//! The switch protocol runtime (paper Fig. 6 and §5.2).
//!
//! Switches forward flows from their tables, raise signed `PacketIn` events
//! on misses, buffer share-signed updates until a quorum of *identical*
//! updates arrives, aggregate-and-verify against the group public key, apply,
//! and acknowledge. The runtime is deliberately minimal — the paper's design
//! goal is "minimal switch instrumentation" — and all heavy operations charge
//! simulated CPU time so Fig. 11d's utilization comparison is reproducible.

use crate::config::{Aggregation, Mode};
use crate::msg::{AckBody, NackBody, Net, PhaseInfo, ReadyBody, SegwayBody, SwitchWalRecord};
use crate::obs::Obs;
use crate::runtime::{labels, Shared};
use blscrypto::bls::{self, PartialSignature, SecretKey};
use controller::membership::ControlPlaneView;
use controller::pending::RetryPolicy;
use netmodel::flowtable::{FlowTable, Lookup};
use simnet::node::{Actor, Host, NodeId, TimerToken};
use simnet::time::{SimDuration, SimTime};
use southbound::envelope::{signing_digest, verify_signed_batch, MsgId, QuorumSigned, Signed};
use southbound::types::{
    ControllerId, DomainId, Event, EventId, EventKind, FlowAction, FlowId, FlowMatch,
    HostId, NetworkUpdate, Phase, SwitchId, UpdateKind,
};
use southbound::codec::Wire;
use std::collections::BTreeMap;
use substrate::collections::{DetMap, DetSet};
use substrate::storage::{DiskHandle, Wal};
use std::sync::Arc;

const RETRY: TimerToken = TimerToken(1);

/// A signed event the switch keeps for retransmission until its effect is
/// visible in the flow table (reliable delivery layer). `LinkFailure`
/// events are deliberately *not* tracked: they have no local effect to
/// await, and the link-state convergence story is out of scope here (a
/// documented deviation, see DESIGN.md).
#[derive(Clone, Debug)]
struct PendingEvent {
    signed: Signed<Event>,
    /// The flow-table entry whose appearance (`PacketIn`) or disappearance
    /// (`FlowTeardown`) cancels the retransmission.
    matcher: FlowMatch,
    teardown: bool,
    attempts: u32,
    next_due: SimTime,
}

/// NACK (state re-sync request) state for a below-quorum update bucket.
#[derive(Clone, Copy, Debug)]
struct NackState {
    attempts: u32,
    next_due: SimTime,
}

/// A flow parked at its ingress switch until the route is installed.
#[derive(Clone, Copy, Debug)]
struct WaitingFlow {
    flow: FlowId,
    start: SimTime,
    transit: SimDuration,
    bytes: u64,
}

/// A group of identical updates accumulating signature shares.
#[derive(Clone, Debug)]
struct QuorumBucket {
    update: NetworkUpdate,
    phase: Phase,
    partials: BTreeMap<u32, PartialSignature>,
    /// Signers whose partials failed individual verification (Byzantine).
    blacklisted: DetSet<u32>,
}

/// A Segway update body accumulating signature shares: the same quorum
/// logic as [`QuorumBucket`], but over the update *plus* its gate/notify
/// metadata so a quorum also vouches for the release order.
#[derive(Clone, Debug)]
struct SegBucket {
    body: SegwayBody,
    phase: Phase,
    partials: BTreeMap<u32, PartialSignature>,
    blacklisted: DetSet<u32>,
}

/// An un-receipted Segway ready message, retransmitted with backoff until
/// the target switch's signed receipt arrives or the budget runs out.
#[derive(Clone, Debug)]
struct ReadyOut {
    signed: Signed<ReadyBody>,
    target: NodeId,
    attempts: u32,
    next_due: SimTime,
}

/// The switch actor.
pub struct SwitchActor {
    shared: Arc<Shared>,
    id: SwitchId,
    domain: DomainId,
    key: Option<SecretKey>,
    table: FlowTable,
    waiting: DetMap<FlowMatch, Vec<WaitingFlow>>,
    outstanding: DetSet<FlowMatch>,
    buckets: DetMap<(southbound::types::UpdateId, Phase), Vec<QuorumBucket>>,
    applied: DetSet<southbound::types::UpdateId>,
    /// Signer indices seen per applied update: shares from signers *not*
    /// in here are the tail of the original broadcast (quorum fired before
    /// every controller's share landed) and must not trigger re-acks.
    applied_signers: DetMap<southbound::types::UpdateId, DetSet<u32>>,
    phase_info: PhaseInfo,
    event_seq: u64,
    msg_seq: u64,
    pending_events: BTreeMap<EventId, PendingEvent>,
    nacks: BTreeMap<southbound::types::UpdateId, NackState>,
    event_policy: RetryPolicy,
    nack_policy: RetryPolicy,
    retry_armed: bool,
    // ----- Segway state (Mode::Segway only) -------------------------------
    /// Share buckets over `SegwayBody` (update + gate/notify metadata).
    seg_buckets: DetMap<(southbound::types::UpdateId, Phase), Vec<SegBucket>>,
    /// Quorum-verified bodies whose gates are not all open yet, with the
    /// signer count backing them.
    parked: DetMap<southbound::types::UpdateId, (SegwayBody, u32)>,
    /// Verified readies received: gating update → switches that announced
    /// applying it (a ready may arrive before its gated body does).
    ready_in: DetMap<southbound::types::UpdateId, DetSet<SwitchId>>,
    /// Outgoing readies awaiting a receipt, keyed `(gating update, target)`.
    ready_out: DetMap<(southbound::types::UpdateId, SwitchId), ReadyOut>,
    /// Every `(update, target)` ever released — the exactly-once-release
    /// guard. Survives receipt-driven `ready_out` removal, so duplicated
    /// quorum deliveries and replayed state never re-release a neighbor.
    ready_sent: DetSet<(southbound::types::UpdateId, SwitchId)>,
    ready_policy: RetryPolicy,
    /// Durable journal (attached by the executor; `None` = diskless).
    wal: Option<Wal>,
    /// Readies the WAL says were sent but never receipted, re-armed for
    /// retransmission on the post-restart `on_start`.
    recovered_readies: Vec<(southbound::types::UpdateId, SwitchId)>,
}

impl SwitchActor {
    /// Builds the actor for `id` in `domain`.
    pub fn new(
        shared: Arc<Shared>,
        id: SwitchId,
        domain: DomainId,
        key: Option<SecretKey>,
        phase_info: PhaseInfo,
    ) -> Self {
        let rel = &shared.cfg.reliability;
        let event_policy = RetryPolicy {
            base: rel.event_retry_base,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.event_retry_budget } else { 0 },
            jitter_seed: shared.cfg.seed ^ u64::from(id.0).rotate_left(29),
        };
        let nack_policy = RetryPolicy {
            base: rel.nack_timeout,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.nack_budget } else { 0 },
            jitter_seed: shared.cfg.seed ^ u64::from(id.0).rotate_left(47),
        };
        let ready_policy = RetryPolicy {
            base: rel.retry_base,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.retry_budget } else { 0 },
            jitter_seed: shared.cfg.seed ^ u64::from(id.0).rotate_left(13),
        };
        SwitchActor {
            shared,
            id,
            domain,
            key,
            table: FlowTable::new(),
            waiting: DetMap::new(),
            outstanding: DetSet::new(),
            buckets: DetMap::new(),
            applied: DetSet::new(),
            applied_signers: DetMap::new(),
            phase_info,
            event_seq: 0,
            msg_seq: 0,
            pending_events: BTreeMap::new(),
            nacks: BTreeMap::new(),
            event_policy,
            nack_policy,
            retry_armed: false,
            seg_buckets: DetMap::new(),
            parked: DetMap::new(),
            ready_in: DetMap::new(),
            ready_out: DetMap::new(),
            ready_sent: DetSet::new(),
            ready_policy,
            wal: None,
            recovered_readies: Vec::new(),
        }
    }

    /// Attaches durable storage. Opens (and torn-tail-repairs) the WAL;
    /// with `recovering` set the records replay first — restoring the flow
    /// table, the applied-update dedup set, and the Segway release ledger
    /// (`ready_sent` / `ready_in`) — so a restarted switch never
    /// re-releases a neighbor it already released, and never forgets a
    /// ready it receipted (the sender stopped retransmitting on that
    /// receipt). Sent-but-unreceipted readies are queued for retransmission
    /// on the next `on_start`. A fresh boot finds an empty WAL and this is
    /// a no-op beyond arming the log.
    pub fn attach_disk(&mut self, disk: DiskHandle, recovering: bool) {
        let (wal, tail) = Wal::open(disk, "switch.wal");
        self.wal = Some(wal);
        if !recovering {
            return;
        }
        let mut records = Vec::new();
        for frame in tail {
            if let Ok(r) = SwitchWalRecord::from_wire(&frame) {
                records.push(r);
            }
        }
        let mut receipted: DetSet<(southbound::types::UpdateId, SwitchId)> = DetSet::new();
        for r in &records {
            if let SwitchWalRecord::ReadyReceipted { update, to } = r {
                receipted.insert((*update, *to));
            }
        }
        for r in records {
            match r {
                SwitchWalRecord::Applied { update, .. } => {
                    if self.applied.insert(update.id) {
                        self.table.apply(&update);
                    }
                }
                SwitchWalRecord::ReadySent { update, to } => {
                    if self.ready_sent.insert((update, to)) && !receipted.contains(&(update, to))
                    {
                        self.recovered_readies.push((update, to));
                    }
                }
                SwitchWalRecord::ReadyReceipted { .. } => {}
                SwitchWalRecord::ReadyIn { update, from } => {
                    self.ready_in.entry(update).or_default().insert(from);
                }
            }
        }
    }

    /// Appends one record to the WAL (no-op without attached storage).
    fn log_record(&mut self, rec: &SwitchWalRecord) {
        if let Some(w) = self.wal.as_mut() {
            w.append(&rec.to_wire());
        }
    }

    /// Signed events still awaiting their effect, plus un-receipted Segway
    /// readies still being retransmitted (watchdog / tests).
    pub fn outstanding_event_count(&self) -> usize {
        self.pending_events.len() + self.ready_out.len()
    }

    /// Segway readies sent so far, as `(gating update, released switch)` —
    /// the exactly-once-release set (tests).
    pub fn readies_sent(&self) -> Vec<(southbound::types::UpdateId, SwitchId)> {
        self.ready_sent.iter().copied().collect()
    }

    /// Read access to the flow table (tests, examples).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// The updates applied so far (tests).
    pub fn applied_count(&self) -> usize {
        self.applied.len()
    }

    fn msg_id(&mut self) -> MsgId {
        self.msg_seq += 1;
        MsgId {
            origin: self.id.0,
            seq: self.msg_seq,
        }
    }

    fn fresh_event_id(&mut self) -> EventId {
        self.event_seq += 1;
        EventId(((self.id.0 as u64) << 32) | self.event_seq)
    }

    /// Quorum for update application at the current phase.
    fn quorum(&self) -> usize {
        self.phase_info.quorum as usize
    }

    /// Where events go: the aggregator (controller aggregation) or the whole
    /// domain control plane.
    fn event_targets(&self, ctx: &mut dyn Host<Net, Obs>) -> Vec<NodeId> {
        let _ = ctx;
        let dir = &self.shared.dir;
        match self.shared.cfg.mode {
            Mode::Cicero {
                aggregation: Aggregation::Controller,
            } => vec![dir.controller(self.domain, self.phase_info.aggregator)],
            _ => dir
                .initial_members
                .get(&self.domain)
                .map(|ms| dir.controller_nodes(self.domain, ms.iter().copied()).collect())
                .unwrap_or_default(),
        }
    }

    fn sign_event(&mut self, ctx: &mut dyn Host<Net, Obs>, event: Event) -> Signed<Event> {
        let phase = self.phase_info.phase;
        let msg_id = self.msg_id();
        if self.shared.cfg.mode.is_signed() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        }
        if self.shared.real_crypto() && self.shared.cfg.mode.is_signed() {
            let key = self.key.as_ref().expect("real mode has switch keys");
            Signed::sign(labels::EVENT, event, phase, msg_id, key)
        } else {
            Signed {
                payload: event,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        }
    }

    fn raise_event(&mut self, ctx: &mut dyn Host<Net, Obs>, kind: EventKind) {
        let event = Event {
            id: self.fresh_event_id(),
            kind,
            origin: self.domain,
            forwarded: false,
        };
        let signed = self.sign_event(ctx, event);
        for node in self.event_targets(ctx) {
            ctx.send(node, Net::EventMsg(signed.clone()));
        }
        // Track events whose effect we can await locally, for
        // retransmission if the control plane never answers.
        if self.shared.cfg.reliability.enabled {
            let track = match event.kind {
                EventKind::PacketIn { src, dst, .. } => Some((FlowMatch { src, dst }, false)),
                EventKind::FlowTeardown { src, dst, .. } => {
                    Some((FlowMatch { src, dst }, true))
                }
                _ => None,
            };
            if let Some((matcher, teardown)) = track {
                let next_due = ctx.now() + self.event_backoff(event.id, 1);
                self.pending_events.insert(
                    event.id,
                    PendingEvent {
                        signed,
                        matcher,
                        teardown,
                        attempts: 0,
                        next_due,
                    },
                );
                self.arm_retry(ctx);
            }
        }
    }

    fn event_backoff(&self, id: EventId, attempt: u32) -> SimDuration {
        self.event_policy.backoff(
            southbound::types::UpdateId { event: id, seq: 0 },
            attempt,
        )
    }

    fn complete_waiters(&mut self, ctx: &mut dyn Host<Net, Obs>, m: FlowMatch) {
        let Some(waiters) = self.waiting.remove(&m) else {
            return;
        };
        let action = self.table.rule(m);
        for w in waiters {
            match action {
                Some(FlowAction::Forward(_)) => {
                    let delay = w.transit + self.shared.cfg.tx_time(w.bytes);
                    ctx.send_delayed(
                        ctx.id(),
                        Net::FlowDone {
                            flow: w.flow,
                            start: w.start,
                            src: m.src,
                            dst: m.dst,
                        },
                        delay,
                    );
                }
                Some(FlowAction::Deny) => ctx.observe(Obs::FlowDenied { flow: w.flow }),
                None => {
                    // Rule disappeared before the waiters drained (teardown
                    // race); re-queue via a fresh event.
                    self.waiting.entry(m).or_default().push(w);
                }
            }
        }
        if self.waiting.get(&m).is_none_or(|v| v.is_empty()) {
            self.outstanding.remove(&m);
        }
    }

    /// `signers` is the quorum evidence backing this apply, reported in the
    /// observation stream for security auditing (see [`Obs::UpdateApplied`]).
    fn apply_update(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        update: NetworkUpdate,
        signers: u32,
    ) {
        if !self.applied.insert(update.id) {
            return;
        }
        self.nacks.remove(&update.id);
        self.table.apply(&update);
        self.log_record(&SwitchWalRecord::Applied { update, signers });
        ctx.observe(Obs::UpdateApplied {
            switch: self.id,
            update: update.id,
            kind: update.kind,
            signers,
        });
        // The update's effect cancels any event retransmission awaiting it.
        match update.kind {
            UpdateKind::Install(rule) => self
                .pending_events
                .retain(|_, p| p.teardown || p.matcher != rule.matcher),
            UpdateKind::Remove(matcher) => self
                .pending_events
                .retain(|_, p| !p.teardown || p.matcher != matcher),
        }
        if let UpdateKind::Install(rule) = update.kind {
            self.outstanding.remove(&rule.matcher);
            self.complete_waiters(ctx, rule.matcher);
        }
        self.send_ack(ctx, update);
    }

    fn send_ack(&mut self, ctx: &mut dyn Host<Net, Obs>, update: NetworkUpdate) {
        let body = AckBody {
            update: update.id,
            switch: self.id,
        };
        let phase = self.phase_info.phase;
        let msg_id = self.msg_id();
        let signed = if self.shared.cfg.mode.is_signed() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
            if self.shared.real_crypto() {
                let key = self.key.as_ref().expect("real mode has switch keys");
                Signed::sign(labels::ACK, body, phase, msg_id, key)
            } else {
                Signed {
                    payload: body,
                    phase,
                    msg_id,
                    signature: self.shared.keys.dummy,
                }
            }
        } else {
            Signed {
                payload: body,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        };
        let members: Vec<NodeId> = self
            .shared
            .dir
            .initial_members
            .get(&self.domain)
            .map(|ms| {
                self.shared
                    .dir
                    .controller_nodes(self.domain, ms.iter().copied())
                    .collect()
            })
            .unwrap_or_default();
        for node in members {
            ctx.send(node, Net::AckMsg(signed.clone()));
        }
    }

    /// A duplicate of an already-applied update means some controller has
    /// not seen our acknowledgement — re-send it (ack-loss recovery).
    fn reack(&mut self, ctx: &mut dyn Host<Net, Obs>, update: NetworkUpdate) {
        if !self.shared.cfg.reliability.enabled {
            return;
        }
        ctx.observe(Obs::AckRetransmitted {
            switch: self.id,
            update: update.id,
        });
        self.send_ack(ctx, update);
    }

    // ----- reliable delivery (event retransmission + NACKs) ---------------

    /// Arms the retry timer for the earliest pending deadline. One timer is
    /// outstanding at a time; it re-arms itself from `on_timer`.
    fn arm_retry(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        if self.retry_armed || !self.shared.cfg.reliability.enabled {
            return;
        }
        let next = self
            .pending_events
            .values()
            .map(|p| p.next_due)
            .chain(self.nacks.values().map(|n| n.next_due))
            .chain(self.ready_out.values().map(|r| r.next_due))
            .min();
        let Some(due) = next else {
            return;
        };
        ctx.set_timer(due.since(ctx.now()), RETRY);
        self.retry_armed = true;
    }

    fn sweep_pending_events(&mut self, ctx: &mut dyn Host<Net, Obs>, now: SimTime) {
        let budget = self.shared.cfg.reliability.event_retry_budget;
        let due: Vec<EventId> = self
            .pending_events
            .iter()
            .filter(|(_, p)| p.next_due <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let p = self.pending_events.get_mut(&id).expect("present");
            if p.attempts >= budget {
                self.pending_events.remove(&id);
                ctx.observe(Obs::EventRetryExhausted {
                    switch: self.id,
                    event: id,
                });
                continue;
            }
            p.attempts += 1;
            let attempt = p.attempts;
            let signed = p.signed.clone();
            let backoff = self.event_backoff(id, attempt + 1);
            self.pending_events
                .get_mut(&id)
                .expect("present")
                .next_due = now + backoff;
            ctx.observe(Obs::EventRetransmitted {
                switch: self.id,
                event: id,
                attempt,
            });
            for node in self.event_targets(ctx) {
                ctx.send(node, Net::EventMsg(signed.clone()));
            }
        }
    }

    fn sweep_nacks(&mut self, ctx: &mut dyn Host<Net, Obs>, now: SimTime) {
        let budget = self.shared.cfg.reliability.nack_budget;
        let due: Vec<southbound::types::UpdateId> = self
            .nacks
            .iter()
            .filter(|(_, n)| n.next_due <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            // The bucket may have reached quorum (applied) or been pruned by
            // a phase change in the meantime.
            let have = self
                .buckets
                .get(&(id, self.phase_info.phase))
                .map(|bs| bs.iter().map(|b| b.partials.len()).max().unwrap_or(0))
                .unwrap_or(0)
                .max(
                    self.seg_buckets
                        .get(&(id, self.phase_info.phase))
                        .map(|bs| bs.iter().map(|b| b.partials.len()).max().unwrap_or(0))
                        .unwrap_or(0),
                );
            if self.applied.contains(&id) || have == 0 {
                self.nacks.remove(&id);
                continue;
            }
            let st = self.nacks.get_mut(&id).expect("present");
            if st.attempts >= budget {
                // Stop NACKing; the controllers' own retransmission (and its
                // exhaustion report) remains the backstop.
                self.nacks.remove(&id);
                continue;
            }
            st.attempts += 1;
            let attempt = st.attempts;
            st.next_due = now + self.nack_policy.backoff(id, attempt + 1);
            self.send_nack(ctx, id, have as u32);
        }
    }

    fn send_nack(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        update: southbound::types::UpdateId,
        have: u32,
    ) {
        let body = NackBody {
            update,
            switch: self.id,
            have,
        };
        let phase = self.phase_info.phase;
        let msg_id = self.msg_id();
        let signed = if self.shared.cfg.mode.is_signed() && self.shared.real_crypto() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
            let key = self.key.as_ref().expect("real mode has switch keys");
            Signed::sign(labels::NACK, body, phase, msg_id, key)
        } else {
            Signed {
                payload: body,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        };
        ctx.observe(Obs::NackSent {
            switch: self.id,
            update,
            have,
        });
        let members: Vec<NodeId> = self
            .shared
            .dir
            .initial_members
            .get(&self.domain)
            .map(|ms| {
                self.shared
                    .dir
                    .controller_nodes(self.domain, ms.iter().copied())
                    .collect()
            })
            .unwrap_or_default();
        for node in members {
            ctx.send(node, Net::UpdateNack(signed.clone()));
        }
    }

    /// Switch-side aggregation (paper Fig. 6b): buffer share-signed updates
    /// until a quorum of identical updates, aggregate, verify, apply.
    fn on_share_signed(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: southbound::envelope::ShareSigned<NetworkUpdate>,
    ) {
        ctx.charge_cpu(self.shared.cfg.costs.switch_msg);
        if self.applied.contains(&msg.payload.id) {
            let fresh = self
                .applied_signers
                .entry(msg.payload.id)
                .or_default()
                .insert(msg.partial.index);
            if !fresh {
                // Second share from the same signer after apply: that
                // controller is retransmitting, so our ack was lost.
                self.reack(ctx, msg.payload);
            }
            return;
        }
        if msg.phase != self.phase_info.phase {
            return;
        }
        let key = (msg.payload.id, msg.phase);
        if self.shared.cfg.reliability.enabled {
            // Start the NACK clock the moment the first share arrives: if
            // the bucket is still below quorum when it fires, ask the
            // control plane to re-send the missing shares.
            let due = ctx.now() + self.nack_policy.backoff(msg.payload.id, 1);
            self.nacks.entry(msg.payload.id).or_insert(NackState {
                attempts: 0,
                next_due: due,
            });
            self.arm_retry(ctx);
        }
        let buckets = self.buckets.entry(key).or_default();
        let bucket = match buckets.iter_mut().find(|b| b.update == msg.payload) {
            Some(b) => b,
            None => {
                buckets.push(QuorumBucket {
                    update: msg.payload,
                    phase: msg.phase,
                    partials: BTreeMap::new(),
                    blacklisted: DetSet::new(),
                });
                buckets.last_mut().expect("just pushed")
            }
        };
        if bucket.blacklisted.contains(&msg.partial.index) {
            return;
        }
        bucket.partials.insert(msg.partial.index, msg.partial);
        self.try_quorum(ctx, key);
    }

    fn try_quorum(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        key: (southbound::types::UpdateId, Phase),
    ) {
        let quorum = self.quorum();
        let Some(buckets) = self.buckets.get_mut(&key) else {
            return;
        };
        let Some(idx) = buckets.iter().position(|b| b.partials.len() >= quorum) else {
            return;
        };
        let costs = self.shared.cfg.costs;
        let real = self.shared.real_crypto();
        let group = self.shared.keys.domains[&self.domain].clone();

        let bucket = &mut buckets[idx];
        let partials: Vec<PartialSignature> = bucket.partials.values().copied().collect();
        ctx.charge_cpu(costs.aggregate_per_share.saturating_mul(partials.len() as u64));
        ctx.charge_cpu(costs.bls_verify);

        let valid = if real {
            let digest = signing_digest(labels::UPDATE, bucket.phase, &bucket.update);
            match bls::aggregate(&partials) {
                Ok(sig) => {
                    if bls::verify(&group.public_key, &digest, &sig) {
                        true
                    } else {
                        // Some partial is bad: verify individually, evict
                        // culprits, and wait for honest replacements.
                        for p in &partials {
                            ctx.charge_cpu(costs.bls_verify);
                            let mpk = group.group.member_public_key(p.index);
                            if !bls::verify_partial(&mpk, &digest, p) {
                                bucket.blacklisted.insert(p.index);
                                bucket.partials.remove(&p.index);
                            }
                        }
                        false
                    }
                }
                Err(_) => false,
            }
        } else {
            true
        };

        if valid {
            let update = bucket.update;
            let signers: DetSet<u32> = bucket.partials.keys().copied().collect();
            let n_signers = signers.len() as u32;
            self.buckets.remove(&key);
            self.applied_signers.insert(update.id, signers);
            self.apply_update(ctx, update, n_signers);
        } else {
            ctx.observe(Obs::UpdateRejected {
                switch: self.id,
                update: key.0,
            });
        }
    }

    /// Controller-aggregation path (paper Fig. 7c): single verification of a
    /// pre-aggregated signature.
    fn on_quorum_signed(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: QuorumSigned<NetworkUpdate>,
    ) {
        ctx.charge_cpu(self.shared.cfg.costs.switch_msg);
        if self.applied.contains(&msg.payload.id) {
            self.reack(ctx, msg.payload);
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.bls_verify);
        let valid = if self.shared.real_crypto() {
            let pk = self.shared.keys.domains[&self.domain].public_key;
            msg.verify(labels::UPDATE, &pk)
        } else {
            true
        };
        if valid {
            // A verified aggregate only exists if exactly `quorum` valid
            // partials were combined with the right Lagrange weights.
            let quorum = self.phase_info.quorum;
            self.apply_update(ctx, msg.payload, quorum);
        } else {
            ctx.observe(Obs::UpdateRejected {
                switch: self.id,
                update: msg.payload.id,
            });
        }
    }

    // ----- Segway: decentralized release via switch-to-switch readies ------

    /// Ready-gating is the Segway analogue of the cross-domain ordering
    /// handshake, so the same config knob disables it for control runs
    /// (which then exhibit the transient black holes gating prevents).
    fn gating_enabled(&self) -> bool {
        self.shared.cfg.cross_domain_handshake
    }

    /// All of `body`'s gates are open: each prerequisite update was either
    /// applied locally or announced by its designated switch with a
    /// verified ready.
    fn gates_open(&self, body: &SegwayBody) -> bool {
        if !self.gating_enabled() {
            return true;
        }
        body.gates.iter().all(|&(u, s)| {
            (s == self.id && self.applied.contains(&u))
                || self.ready_in.get(&u).is_some_and(|set| set.contains(&s))
        })
    }

    /// Segway ingest: same quorum accumulation as [`Self::on_share_signed`],
    /// over the update *plus* its threshold-signed gate/notify metadata.
    fn on_segway_signed(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: southbound::envelope::ShareSigned<SegwayBody>,
    ) {
        ctx.charge_cpu(self.shared.cfg.costs.switch_msg);
        let id = msg.payload.update.id;
        if self.applied.contains(&id) {
            let fresh = self
                .applied_signers
                .entry(id)
                .or_default()
                .insert(msg.partial.index);
            if !fresh {
                self.reack(ctx, msg.payload.update);
            }
            return;
        }
        if msg.phase != self.phase_info.phase {
            return;
        }
        if self.parked.get(&id).is_some() {
            // Quorum already proven; the body is just waiting on its gates.
            return;
        }
        if self.shared.cfg.reliability.enabled {
            let due = ctx.now() + self.nack_policy.backoff(id, 1);
            self.nacks.entry(id).or_insert(NackState {
                attempts: 0,
                next_due: due,
            });
            self.arm_retry(ctx);
        }
        let buckets = self.seg_buckets.entry((id, msg.phase)).or_default();
        let bucket = match buckets.iter_mut().find(|b| b.body == msg.payload) {
            Some(b) => b,
            None => {
                buckets.push(SegBucket {
                    body: msg.payload,
                    phase: msg.phase,
                    partials: BTreeMap::new(),
                    blacklisted: DetSet::new(),
                });
                buckets.last_mut().expect("just pushed")
            }
        };
        if bucket.blacklisted.contains(&msg.partial.index) {
            return;
        }
        bucket.partials.insert(msg.partial.index, msg.partial);
        self.try_seg_quorum(ctx, (id, msg.phase));
    }

    fn try_seg_quorum(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        key: (southbound::types::UpdateId, Phase),
    ) {
        let quorum = self.quorum();
        let Some(buckets) = self.seg_buckets.get_mut(&key) else {
            return;
        };
        let Some(idx) = buckets.iter().position(|b| b.partials.len() >= quorum) else {
            return;
        };
        let costs = self.shared.cfg.costs;
        let real = self.shared.real_crypto();
        let group = self.shared.keys.domains[&self.domain].clone();

        let bucket = &mut buckets[idx];
        let partials: Vec<PartialSignature> = bucket.partials.values().copied().collect();
        ctx.charge_cpu(costs.aggregate_per_share.saturating_mul(partials.len() as u64));
        ctx.charge_cpu(costs.bls_verify);

        let valid = if real {
            let digest = signing_digest(labels::SEGWAY, bucket.phase, &bucket.body);
            match bls::aggregate(&partials) {
                Ok(sig) => {
                    if bls::verify(&group.public_key, &digest, &sig) {
                        true
                    } else {
                        for p in &partials {
                            ctx.charge_cpu(costs.bls_verify);
                            let mpk = group.group.member_public_key(p.index);
                            if !bls::verify_partial(&mpk, &digest, p) {
                                bucket.blacklisted.insert(p.index);
                                bucket.partials.remove(&p.index);
                            }
                        }
                        false
                    }
                }
                Err(_) => false,
            }
        } else {
            true
        };

        if valid {
            let body = bucket.body.clone();
            let signers: DetSet<u32> = bucket.partials.keys().copied().collect();
            let n_signers = signers.len() as u32;
            self.seg_buckets.remove(&key);
            self.applied_signers.insert(key.0, signers);
            if self.gates_open(&body) {
                self.seg_apply(ctx, body, n_signers);
                self.release_parked(ctx);
            } else {
                self.parked.insert(key.0, (body, n_signers));
            }
        } else {
            ctx.observe(Obs::UpdateRejected {
                switch: self.id,
                update: key.0,
            });
        }
    }

    /// Applies a gated body and releases the switches its threshold-signed
    /// `notify` list names.
    fn seg_apply(&mut self, ctx: &mut dyn Host<Net, Obs>, body: SegwayBody, signers: u32) {
        if self.applied.contains(&body.update.id) {
            return;
        }
        self.apply_update(ctx, body.update, signers);
        if !self.gating_enabled() {
            return;
        }
        for i in 0..body.notify.len() {
            let to = body.notify[i];
            if to == self.id {
                continue;
            }
            // Exactly-once release: a neighbor is released at most once per
            // gating update no matter how often the quorum re-fires.
            if !self.ready_sent.insert((body.update.id, to)) {
                continue;
            }
            // Write-ahead: the release is durable before it can be observed,
            // so a crash between journal and send re-sends (at-least-once on
            // the wire) rather than re-releasing (exactly-once in the set).
            self.log_record(&SwitchWalRecord::ReadySent {
                update: body.update.id,
                to,
            });
            let ready = ReadyBody {
                update: body.update.id,
                from: self.id,
                to,
            };
            let phase = self.phase_info.phase;
            let msg_id = self.msg_id();
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
            let signed = if self.shared.real_crypto() {
                let key = self.key.as_ref().expect("real mode has switch keys");
                Signed::sign(labels::READY, ready, phase, msg_id, key)
            } else {
                Signed {
                    payload: ready,
                    phase,
                    msg_id,
                    signature: self.shared.keys.dummy,
                }
            };
            ctx.observe(Obs::ReadySent {
                from: self.id,
                to,
                update: body.update.id,
            });
            let target = self.shared.dir.switch(to);
            ctx.send(target, Net::SegwayReady(signed.clone()));
            if self.shared.cfg.reliability.enabled {
                let next_due = ctx.now() + self.ready_policy.backoff(body.update.id, 1);
                self.ready_out.insert(
                    (body.update.id, to),
                    ReadyOut {
                        signed,
                        target,
                        attempts: 0,
                        next_due,
                    },
                );
                self.arm_retry(ctx);
            }
        }
    }

    /// A verified ready may open gates of parked bodies; applying one may
    /// in turn open local gates of another, so drain to a fixpoint.
    fn release_parked(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        loop {
            let next = self
                .parked
                .iter()
                .find(|(_, (b, _))| self.gates_open(b))
                .map(|(&k, _)| k);
            let Some(k) = next else {
                return;
            };
            let (body, signers) = self.parked.remove(&k).expect("just found");
            self.seg_apply(ctx, body, signers);
        }
    }

    /// A neighbor announces it applied a gating update. Verified through
    /// the batch-verification path with the simulation RNG; rejected when
    /// the signature fails, the `to` binding names someone else (a replay
    /// at the wrong victim), or the sender is not the gate's designated
    /// switch — the latter two structural checks also bite under
    /// [`crate::config::CryptoMode::Modeled`], where signatures are vacuous.
    fn on_ready(&mut self, ctx: &mut dyn Host<Net, Obs>, msg: Signed<ReadyBody>) {
        ctx.charge_cpu(self.shared.cfg.costs.switch_msg);
        let body = msg.payload;
        let reject = |ctx: &mut dyn Host<Net, Obs>, switch: SwitchId| {
            ctx.observe(Obs::ReadyRejected {
                switch,
                update: body.update,
                from: body.from,
            });
        };
        if body.to != self.id || body.from == self.id {
            reject(ctx, self.id);
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.bls_verify);
        let valid = if self.shared.real_crypto() {
            match self.shared.keys.switch_pk.get(&body.from) {
                Some(&pk) => verify_signed_batch(labels::READY, &[(&msg, pk)], ctx.rng()),
                None => false,
            }
        } else {
            self.shared.dir.switch_node.contains_key(&body.from)
        };
        if !valid {
            reject(ctx, self.id);
            return;
        }
        // If a parked body names a different switch for this gate, the
        // sender is impersonating the designated releaser.
        let impersonated = self.parked.values().any(|(b, _)| {
            b.gates
                .iter()
                .any(|&(u, s)| u == body.update && s != body.from)
        });
        if impersonated {
            reject(ctx, self.id);
            return;
        }
        // Receipt every valid ready (idempotent for duplicates) so the
        // sender stops retransmitting.
        let phase = self.phase_info.phase;
        let msg_id = self.msg_id();
        ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        let receipt = if self.shared.real_crypto() {
            let key = self.key.as_ref().expect("real mode has switch keys");
            Signed::sign(labels::READY_RECEIPT, body, phase, msg_id, key)
        } else {
            Signed {
                payload: body,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        };
        // The receipt promises the sender it can stop retransmitting, so
        // the accepted ready must be durable before the receipt is sent.
        if self
            .ready_in
            .entry(body.update)
            .or_default()
            .insert(body.from)
        {
            self.log_record(&SwitchWalRecord::ReadyIn {
                update: body.update,
                from: body.from,
            });
        }
        let sender = self.shared.dir.switch(body.from);
        ctx.send(sender, Net::SegwayReadyAck(receipt));
        self.release_parked(ctx);
    }

    /// The target switch receipted a ready we sent: stop retransmitting it.
    fn on_ready_ack(&mut self, ctx: &mut dyn Host<Net, Obs>, msg: Signed<ReadyBody>) {
        ctx.charge_cpu(self.shared.cfg.costs.switch_msg);
        let body = msg.payload;
        if body.from != self.id {
            return;
        }
        let key = (body.update, body.to);
        if self.ready_out.get(&key).is_none() {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.bls_verify);
        let valid = if self.shared.real_crypto() {
            match self.shared.keys.switch_pk.get(&body.to) {
                Some(pk) => msg.verify(labels::READY_RECEIPT, pk),
                None => false,
            }
        } else {
            true
        };
        if valid {
            self.ready_out.remove(&key);
            self.log_record(&SwitchWalRecord::ReadyReceipted {
                update: key.0,
                to: key.1,
            });
        }
    }

    fn sweep_readies(&mut self, ctx: &mut dyn Host<Net, Obs>, now: SimTime) {
        let budget = self.ready_policy.budget;
        let due: Vec<(southbound::types::UpdateId, SwitchId)> = self
            .ready_out
            .iter()
            .filter(|(_, r)| r.next_due <= now)
            .map(|(&k, _)| k)
            .collect();
        for key in due {
            let r = self.ready_out.get_mut(&key).expect("present");
            if r.attempts >= budget {
                // Stop retransmitting; the controller's own update retry
                // (and its exhaustion report) remains the backstop for the
                // stalled downstream segment.
                self.ready_out.remove(&key);
                continue;
            }
            r.attempts += 1;
            let attempt = r.attempts;
            let signed = r.signed.clone();
            let target = r.target;
            r.next_due = now + self.ready_policy.backoff(key.0, attempt + 1);
            ctx.observe(Obs::ReadyRetransmitted {
                from: self.id,
                to: key.1,
                update: key.0,
                attempt,
            });
            ctx.send(target, Net::SegwayReady(signed));
        }
    }

    fn on_flow_arrival(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        bytes: u64,
        transit: SimDuration,
        start: SimTime,
    ) {
        let m = FlowMatch { src, dst };
        match self.table.lookup(m) {
            Lookup::Action(FlowAction::Forward(_)) => {
                let delay = transit + self.shared.cfg.tx_time(bytes);
                ctx.send_delayed(
                    ctx.id(),
                    Net::FlowDone {
                        flow,
                        start,
                        src,
                        dst,
                    },
                    delay,
                );
            }
            Lookup::Action(FlowAction::Deny) => {
                ctx.observe(Obs::FlowDenied { flow });
            }
            Lookup::Miss => {
                self.waiting.entry(m).or_default().push(WaitingFlow {
                    flow,
                    start,
                    transit,
                    bytes,
                });
                if self.outstanding.insert(m) {
                    self.raise_event(
                        ctx,
                        EventKind::PacketIn {
                            switch: self.id,
                            flow,
                            src,
                            dst,
                        },
                    );
                }
            }
        }
    }
}

impl Actor<Net, Obs> for SwitchActor {
    fn on_start(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        // The restart half of crash recovery: resume retransmitting readies
        // the WAL says were sent but never receipted. No new `ReadySent` is
        // observed — the release already happened in a previous life; the
        // sweep emits `ReadyRetransmitted` like any other retry.
        let pairs = std::mem::take(&mut self.recovered_readies);
        for (update, to) in pairs {
            let ready = ReadyBody {
                update,
                from: self.id,
                to,
            };
            let phase = self.phase_info.phase;
            let msg_id = self.msg_id();
            let signed = if self.shared.real_crypto() {
                let key = self.key.as_ref().expect("real mode has switch keys");
                Signed::sign(labels::READY, ready, phase, msg_id, key)
            } else {
                Signed {
                    payload: ready,
                    phase,
                    msg_id,
                    signature: self.shared.keys.dummy,
                }
            };
            let next_due = ctx.now() + self.ready_policy.backoff(update, 1);
            self.ready_out.insert(
                (update, to),
                ReadyOut {
                    signed,
                    target: self.shared.dir.switch(to),
                    attempts: 0,
                    next_due,
                },
            );
        }
        self.arm_retry(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn Host<Net, Obs>, token: TimerToken) {
        if token != RETRY {
            return;
        }
        self.retry_armed = false;
        let now = ctx.now();
        self.sweep_pending_events(ctx, now);
        self.sweep_nacks(ctx, now);
        self.sweep_readies(ctx, now);
        self.arm_retry(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn Host<Net, Obs>, _from: NodeId, msg: Net) {
        match msg {
            Net::FlowArrival {
                flow,
                src,
                dst,
                bytes,
                transit,
                start,
            } => self.on_flow_arrival(ctx, flow, src, dst, bytes, transit, start),
            Net::FlowDone {
                flow,
                start,
                src,
                dst,
            } => {
                ctx.observe(Obs::FlowCompleted { flow, start });
                if !self.shared.cfg.rule_reuse {
                    self.raise_event(ctx, EventKind::FlowTeardown { flow, src, dst });
                }
            }
            Net::UpdateMsg(m) => self.on_share_signed(ctx, m),
            Net::UpdateAggregated(m) => self.on_quorum_signed(ctx, m),
            Net::SegwayUpdate(m) => self.on_segway_signed(ctx, m),
            Net::SegwayReady(m) => self.on_ready(ctx, m),
            Net::SegwayReadyAck(m) => self.on_ready_ack(ctx, m),
            Net::UpdatePlain { update, from: _ } => {
                ctx.charge_cpu(self.shared.cfg.costs.switch_msg);
                if self.applied.contains(&update.id) {
                    self.reack(ctx, update);
                } else {
                    // Unauthenticated baseline: one controller's word.
                    self.apply_update(ctx, update, 1);
                }
            }
            Net::LinkDown { a, b } => {
                self.raise_event(ctx, EventKind::LinkFailure { a, b });
            }
            Net::PhaseNotice(m) => {
                ctx.charge_cpu(self.shared.cfg.costs.bls_verify);
                let valid = if self.shared.real_crypto() {
                    let pk = self.shared.keys.domains[&self.domain].public_key;
                    m.verify(labels::PHASE, &pk)
                } else {
                    true
                };
                if valid && m.payload.phase > self.phase_info.phase {
                    self.phase_info = m.payload;
                    // Stale aggregation buckets from the old phase die here.
                    self.buckets.retain(|(_, p), _| *p == m.payload.phase);
                    self.seg_buckets.retain(|(_, p), _| *p == m.payload.phase);
                }
            }
            // Messages not addressed to switches are ignored defensively.
            _ => {}
        }
    }
}

/// Helper used by engine/tests to build the view-consistent initial phase
/// info for a domain.
pub fn initial_phase_info(view: &ControlPlaneView) -> PhaseInfo {
    PhaseInfo {
        phase: view.phase(),
        quorum: view.quorum() as u32,
        aggregator: view.aggregator(),
    }
}

/// Initial phase info for baselines without a real membership view
/// (centralized / crash-tolerant modes).
pub fn trivial_phase_info(members: u32) -> PhaseInfo {
    PhaseInfo {
        phase: Phase(0),
        quorum: 1,
        aggregator: ControllerId(1),
    }
    .with_members(members)
}

impl PhaseInfo {
    fn with_members(mut self, members: u32) -> Self {
        if members >= 4 {
            self.quorum = (members - 1) / 3 + 1;
        }
        self
    }
}
