//! Observations emitted by the protocol actors and the metric reductions
//! the experiment figures are built from.

use simnet::sim::Observation;
use simnet::time::{SimDuration, SimTime};
use southbound::types::{DomainId, EventId, FlowId, SwitchId, UpdateId};

/// Everything the harness can observe about a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Obs {
    /// A flow finished transmitting; its completion latency is
    /// `at - start` (observation timestamp minus arrival).
    FlowCompleted {
        /// The flow.
        flow: FlowId,
        /// Its arrival time.
        start: SimTime,
    },
    /// A flow was denied by a firewall rule.
    FlowDenied {
        /// The flow.
        flow: FlowId,
    },
    /// A switch applied a validated update.
    UpdateApplied {
        /// The switch.
        switch: SwitchId,
        /// The update.
        update: UpdateId,
        /// What it changed (lets auditors replay data-plane states).
        kind: southbound::types::UpdateKind,
        /// Distinct signature shares backing the apply: the bucket size at
        /// quorum (switch aggregation), the phase quorum proven by a
        /// verified aggregate (controller aggregation), or 1 for the
        /// unauthenticated baselines. Security auditors reconstruct the
        /// quorum evidence from this without trusting the switch logic.
        signers: u32,
    },
    /// A switch rejected an update (bad/missing quorum or signature) —
    /// the security property at work.
    UpdateRejected {
        /// The switch.
        switch: SwitchId,
        /// The update.
        update: UpdateId,
    },
    /// A domain's control plane processed (delivered) an event. Emitted
    /// once per domain (by its lowest-id controller), so counting these
    /// per domain yields the paper's Fig. 12b series.
    EventProcessed {
        /// The processing domain.
        domain: DomainId,
        /// The event.
        event: EventId,
    },
    /// A controller delivered (totally-ordered) an event — emitted by every
    /// controller when `EngineConfig::trace_deliveries` is set, for
    /// event-linearizability checking (paper §4.4).
    EventDelivered {
        /// The domain.
        domain: DomainId,
        /// The delivering controller (1-based id).
        controller: u32,
        /// The event.
        event: EventId,
    },
    /// A membership phase change completed at a controller (resharing
    /// finished, queued events drained).
    PhaseChanged {
        /// The domain.
        domain: DomainId,
        /// The new phase value.
        phase: u64,
    },
    /// A controller retransmitted an unacknowledged update (reliable
    /// delivery layer; `attempt` is 1-based over retransmissions).
    UpdateRetransmitted {
        /// The domain.
        domain: DomainId,
        /// The retransmitting controller (1-based id).
        controller: u32,
        /// The update.
        update: UpdateId,
        /// Which retransmission this is.
        attempt: u32,
    },
    /// A controller exhausted an update's retry budget: the update (and any
    /// dependents abandoned with it) is reported failed instead of stalling
    /// the dependency graph silently.
    UpdateRetryExhausted {
        /// The domain.
        domain: DomainId,
        /// The reporting controller.
        controller: u32,
        /// The failed update.
        update: UpdateId,
    },
    /// A switch re-sent an acknowledgement after seeing a duplicate of an
    /// already-applied update (ack-loss recovery).
    AckRetransmitted {
        /// The switch.
        switch: SwitchId,
        /// The re-acknowledged update.
        update: UpdateId,
    },
    /// A switch retransmitted a signed event that has not produced a rule
    /// yet (event-loss recovery).
    EventRetransmitted {
        /// The switch.
        switch: SwitchId,
        /// The event.
        event: EventId,
        /// Which retransmission this is (1-based).
        attempt: u32,
    },
    /// A switch exhausted an event's retry budget and gave up re-raising it.
    EventRetryExhausted {
        /// The switch.
        switch: SwitchId,
        /// The abandoned event.
        event: EventId,
    },
    /// A switch NACKed a below-quorum update bucket, requesting the missing
    /// signature shares (state re-sync request).
    NackSent {
        /// The switch.
        switch: SwitchId,
        /// The stuck update.
        update: UpdateId,
        /// Shares held when the NACK was sent.
        have: u32,
    },
    /// A controller answered a NACK by re-sending the requested signed
    /// update (from flight or from its acknowledged archive).
    ResyncReplied {
        /// The domain.
        domain: DomainId,
        /// The answering controller.
        controller: u32,
        /// The re-sent update.
        update: UpdateId,
    },
    /// A downstream controller reported its domain's segment of an event
    /// fully applied to the upstream domain(s) — the first send of the
    /// cross-domain ordering handshake.
    SegmentReported {
        /// The reporting (downstream) domain.
        domain: DomainId,
        /// The reporting controller.
        controller: u32,
        /// The event.
        event: EventId,
        /// The applied segment's index in the event's full update list.
        segment: u32,
    },
    /// A downstream controller retransmitted an un-receipted
    /// `SegmentApplied` report (handshake loss recovery).
    SegmentRetransmitted {
        /// The retransmitting domain.
        domain: DomainId,
        /// The retransmitting controller.
        controller: u32,
        /// The event.
        event: EventId,
        /// The segment index.
        segment: u32,
        /// Which retransmission this is (1-based).
        attempt: u32,
    },
    /// An upstream controller collected a downstream quorum of
    /// `SegmentApplied` reports and released the updates held on the
    /// boundary barrier.
    BoundaryReleased {
        /// The releasing (upstream) domain.
        domain: DomainId,
        /// The releasing controller.
        controller: u32,
        /// The event.
        event: EventId,
        /// The downstream segment whose quorum completed.
        segment: u32,
    },
    /// A restarted controller finished crash recovery: WAL + snapshot
    /// replayed, missing deliveries state-synced from a peer, consensus
    /// rejoined.
    ControllerRecovered {
        /// The domain.
        domain: DomainId,
        /// The recovered controller (1-based id).
        controller: u32,
        /// The peer that answered the snapshot transfer.
        peer: u32,
        /// The delivery frontier after catch-up.
        frontier: u64,
    },
    /// A controller compacted its WAL into an atomic snapshot at a
    /// quiescent point.
    SnapshotTaken {
        /// The domain.
        domain: DomainId,
        /// The snapshotting controller (1-based id).
        controller: u32,
        /// WAL records compacted away.
        compacted: u64,
    },
    /// A Segway switch released a neighbor: it applied a gating update and
    /// sent the neighbor a signed ready message. Emitted exactly once per
    /// `(from, update, to)` — the exactly-once-release invariant the
    /// telemetry oracle audits (duplicated quorum deliveries and restarts
    /// must not re-release an already-released neighbor).
    ReadySent {
        /// The releasing switch.
        from: SwitchId,
        /// The released switch.
        to: SwitchId,
        /// The gating update the sender applied.
        update: UpdateId,
    },
    /// A Segway switch retransmitted an un-receipted ready message
    /// (ready-loss recovery; `attempt` is 1-based).
    ReadyRetransmitted {
        /// The retransmitting switch.
        from: SwitchId,
        /// The target switch.
        to: SwitchId,
        /// The gating update.
        update: UpdateId,
        /// Which retransmission this is.
        attempt: u32,
    },
    /// A Segway switch rejected a ready message: bad signature, a `to`
    /// field naming a different switch (replay at the wrong victim), or a
    /// sender that is not the gate's designated switch — the Segway
    /// analogue of [`Obs::UpdateRejected`].
    ReadyRejected {
        /// The rejecting switch.
        switch: SwitchId,
        /// The gating update the message claimed.
        update: UpdateId,
        /// The claimed sender.
        from: SwitchId,
    },
    /// An upstream controller re-forwarded a signed event to the remaining
    /// members of a downstream domain whose segment report is overdue (the
    /// initial single-target forward, or its processing, was evidently
    /// lost).
    ForwardRetransmitted {
        /// The re-forwarding (upstream) domain.
        domain: DomainId,
        /// The re-forwarding controller.
        controller: u32,
        /// The re-forwarded event.
        event: EventId,
        /// Which re-forward this is (1-based).
        attempt: u32,
    },
}

/// Aggregate counters over the reliable-delivery observations of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetransmitStats {
    /// Controller → switch update retransmissions.
    pub update_retransmits: u64,
    /// Updates reported failed after budget exhaustion.
    pub updates_exhausted: u64,
    /// Switch ack re-sends (ack-loss recovery).
    pub ack_retransmits: u64,
    /// Switch event retransmissions.
    pub event_retransmits: u64,
    /// Events abandoned after budget exhaustion.
    pub events_exhausted: u64,
    /// NACKs (state re-sync requests) sent by switches.
    pub nacks: u64,
    /// NACKs answered by controllers with a re-sent update.
    pub resyncs: u64,
    /// Cross-domain `SegmentApplied` retransmissions.
    pub segment_retransmits: u64,
    /// Cross-domain event re-forwards to overdue downstream domains.
    pub forward_retransmits: u64,
    /// Segway switch-to-switch ready retransmissions.
    pub ready_retransmits: u64,
}

impl RetransmitStats {
    /// Total recovery actions taken (any retransmission, NACK or re-sync).
    pub fn total_recoveries(&self) -> u64 {
        self.update_retransmits
            + self.ack_retransmits
            + self.event_retransmits
            + self.nacks
            + self.resyncs
            + self.segment_retransmits
            + self.forward_retransmits
            + self.ready_retransmits
    }
}

/// Reduces a run's observations to its [`RetransmitStats`].
pub fn retransmit_stats(obs: &[Observation<Obs>]) -> RetransmitStats {
    let mut s = RetransmitStats::default();
    for o in obs {
        match o.value {
            Obs::UpdateRetransmitted { .. } => s.update_retransmits += 1,
            Obs::UpdateRetryExhausted { .. } => s.updates_exhausted += 1,
            Obs::AckRetransmitted { .. } => s.ack_retransmits += 1,
            Obs::EventRetransmitted { .. } => s.event_retransmits += 1,
            Obs::EventRetryExhausted { .. } => s.events_exhausted += 1,
            Obs::NackSent { .. } => s.nacks += 1,
            Obs::ResyncReplied { .. } => s.resyncs += 1,
            Obs::SegmentRetransmitted { .. } => s.segment_retransmits += 1,
            Obs::ForwardRetransmitted { .. } => s.forward_retransmits += 1,
            Obs::ReadyRetransmitted { .. } => s.ready_retransmits += 1,
            _ => {}
        }
    }
    s
}

/// Flow-completion latencies extracted from a run's observations.
pub fn flow_latencies(obs: &[Observation<Obs>]) -> Vec<SimDuration> {
    let mut out: Vec<SimDuration> = obs
        .iter()
        .filter_map(|o| match o.value {
            Obs::FlowCompleted { start, .. } => Some(o.at.since(start)),
            _ => None,
        })
        .collect();
    out.sort();
    out
}

/// Update-application latencies relative to a per-update start map.
pub fn update_latency(obs: &[Observation<Obs>], injected_at: SimTime) -> Vec<SimDuration> {
    obs.iter()
        .filter_map(|o| match o.value {
            Obs::UpdateApplied { .. } => Some(o.at.since(injected_at)),
            _ => None,
        })
        .collect()
}

/// Events processed per domain (for the event-locality figure).
pub fn events_per_domain(obs: &[Observation<Obs>]) -> std::collections::BTreeMap<DomainId, usize> {
    let mut map = std::collections::BTreeMap::new();
    for o in obs {
        if let Obs::EventProcessed { domain, .. } = o.value {
            *map.entry(domain).or_insert(0) += 1;
        }
    }
    map
}

/// Per-controller delivery sequences, keyed by `(domain, controller)` —
/// the input to the event-linearizability check.
pub fn delivery_sequences(
    obs: &[Observation<Obs>],
) -> std::collections::BTreeMap<(DomainId, u32), Vec<EventId>> {
    let mut map: std::collections::BTreeMap<(DomainId, u32), Vec<EventId>> =
        std::collections::BTreeMap::new();
    for o in obs {
        if let Obs::EventDelivered {
            domain,
            controller,
            event,
        } = o.value
        {
            map.entry((domain, controller)).or_default().push(event);
        }
    }
    map
}

/// Checks event-linearizability (paper §4.4): within each domain, every
/// controller must have delivered a *prefix-consistent* sequence of events
/// (slower controllers may be behind, but never diverge).
pub fn check_event_linearizability(obs: &[Observation<Obs>]) -> Result<(), String> {
    check_linearizability_inner(obs, false)
}

/// [`check_event_linearizability`] for runs with controller restarts. A
/// controller that recovered via state sync absorbed its missed
/// deliveries silently (muted replay emits no `EventDelivered`), so its
/// observed sequence legitimately has gaps. Controllers with a
/// `ControllerRecovered` observation are therefore only required to
/// deliver an *ordered subsequence* of their domain's longest sequence —
/// reordered or fabricated deliveries still fail — while every other
/// controller keeps the strict prefix requirement. Without restarts this
/// is exactly the strict check.
pub fn check_event_linearizability_with_restarts(
    obs: &[Observation<Obs>],
) -> Result<(), String> {
    check_linearizability_inner(obs, true)
}

fn check_linearizability_inner(
    obs: &[Observation<Obs>],
    allow_restart_gaps: bool,
) -> Result<(), String> {
    let mut restarted = std::collections::BTreeSet::new();
    if allow_restart_gaps {
        for o in obs {
            if let Obs::ControllerRecovered {
                domain, controller, ..
            } = o.value
            {
                restarted.insert((domain, controller));
            }
        }
    }
    let seqs = delivery_sequences(obs);
    let mut by_domain: std::collections::BTreeMap<DomainId, Vec<(&(DomainId, u32), &Vec<EventId>)>> =
        std::collections::BTreeMap::new();
    for (key, seq) in &seqs {
        by_domain.entry(key.0).or_default().push((key, seq));
    }
    for (d, seqs) in by_domain {
        let longest = seqs.iter().map(|(_, s)| *s).max_by_key(|s| s.len()).expect("non-empty");
        for (key, s) in &seqs {
            if restarted.contains(*key) {
                if !is_subsequence(s, longest) {
                    return Err(format!(
                        "domain {d:?}: restarted controller {} delivered {s:?}, not an \
                         ordered subsequence of {longest:?}",
                        key.1
                    ));
                }
            } else if longest[..s.len()] != s[..] {
                return Err(format!(
                    "domain {d:?}: controller sequences diverge: {s:?} is not a prefix of {longest:?}"
                ));
            }
        }
    }
    Ok(())
}

/// `true` iff `needle` appears in `hay` in order (not necessarily
/// contiguously).
fn is_subsequence(needle: &[EventId], hay: &[EventId]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// Number of *distinct* events processed anywhere (multi-domain events count
/// once). The per-domain share of Fig. 12b is `events_per_domain / this`.
pub fn unique_events(obs: &[Observation<Obs>]) -> usize {
    let mut seen = std::collections::BTreeSet::new();
    for o in obs {
        if let Obs::EventProcessed { event, .. } = o.value {
            seen.insert(event);
        }
    }
    seen.len()
}

/// An empirical CDF over latencies, for the paper's CDF figures.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    sorted_ms: Vec<f64>,
}

impl Cdf {
    /// Builds from a latency sample.
    pub fn from_latencies(latencies: &[SimDuration]) -> Self {
        let mut sorted_ms: Vec<f64> = latencies.iter().map(|d| d.as_millis_f64()).collect();
        sorted_ms.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        Cdf { sorted_ms }
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.sorted_ms.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.sorted_ms.is_empty()
    }

    /// The `q`-quantile in milliseconds (`q` in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics on an empty CDF or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(!self.is_empty(), "empty CDF");
        let idx = ((self.sorted_ms.len() - 1) as f64 * q).round() as usize;
        self.sorted_ms[idx]
    }

    /// The mean in milliseconds.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.sorted_ms.iter().sum::<f64>() / self.sorted_ms.len() as f64
    }

    /// Fraction of samples `<= x_ms` (the CDF evaluated at `x_ms`).
    pub fn at(&self, x_ms: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = self.sorted_ms.partition_point(|&v| v <= x_ms);
        n as f64 / self.sorted_ms.len() as f64
    }

    /// `(x_ms, F(x))` points suitable for plotting/printing.
    pub fn points(&self, resolution: usize) -> Vec<(f64, f64)> {
        if self.is_empty() || resolution == 0 {
            return Vec::new();
        }
        (0..=resolution)
            .map(|i| {
                let q = i as f64 / resolution as f64;
                (self.quantile(q), q)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::node::NodeId;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn cdf_quantiles() {
        let lats: Vec<SimDuration> = (1..=100).map(ms).collect();
        let cdf = Cdf::from_latencies(&lats);
        assert_eq!(cdf.len(), 100);
        assert!((cdf.quantile(0.0) - 1.0).abs() < 1e-9);
        assert!((cdf.quantile(1.0) - 100.0).abs() < 1e-9);
        assert!((cdf.quantile(0.5) - 50.0).abs() < 2.0);
        assert!((cdf.mean() - 50.5).abs() < 1e-9);
        assert!((cdf.at(25.0) - 0.25).abs() < 0.01);
        assert_eq!(cdf.at(0.0), 0.0);
        assert_eq!(cdf.at(1000.0), 1.0);
    }

    #[test]
    fn latency_extraction() {
        let obs = vec![
            Observation {
                at: SimTime::from_nanos(5_000_000),
                node: NodeId(1),
                value: Obs::FlowCompleted {
                    flow: FlowId(1),
                    start: SimTime::from_nanos(1_000_000),
                },
            },
            Observation {
                at: SimTime::from_nanos(9_000_000),
                node: NodeId(1),
                value: Obs::FlowDenied { flow: FlowId(2) },
            },
        ];
        let lats = flow_latencies(&obs);
        assert_eq!(lats, vec![SimDuration::from_millis(4)]);
    }

    #[test]
    fn domain_event_counting() {
        let mk = |d: u16, e: u64| Observation {
            at: SimTime::ZERO,
            node: NodeId(0),
            value: Obs::EventProcessed {
                domain: DomainId(d),
                event: EventId(e),
            },
        };
        let obs = vec![mk(0, 1), mk(0, 2), mk(1, 2)];
        let counts = events_per_domain(&obs);
        assert_eq!(counts[&DomainId(0)], 2);
        assert_eq!(counts[&DomainId(1)], 1);
    }
}
