//! # cicero-core — the Cicero protocol engine
//!
//! This crate implements the paper's contribution proper: **consistent and
//! secure network updates** over the simulated substrate crates.
//!
//! * [`config`] — the four evaluated protocol modes (centralized,
//!   crash-tolerant, Cicero with switch or controller aggregation), the
//!   crypto execution mode and the calibrated cost model;
//! * [`msg`] — the protocol message alphabet and the consensus payload;
//! * [`switch`] — the switch runtime (paper Fig. 6): table misses raise
//!   signed events; share-signed updates are buffered until a quorum of
//!   identical updates, aggregated, verified against the group public key,
//!   applied and acknowledged;
//! * [`ctrl`] — the controller runtime (paper Figs. 7–8): PBFT-ordered
//!   events, deterministic app + scheduler, dependency-driven parallel
//!   update release, cross-domain forwarding, the aggregator role, and
//!   membership changes with public-key-preserving share redistribution;
//! * [`engine`] — builds a full deployment on the simulator and injects
//!   workloads;
//! * [`experiment`] — one driver per evaluation figure;
//! * [`obs`] — observations and metric reductions (CDFs, per-domain event
//!   counts, CPU series).
//!
//! ```no_run
//! use cicero_core::prelude::*;
//! use netmodel::topology::Topology;
//! use controller::policy::DomainMap;
//!
//! let cfg = EngineConfig::for_mode(Mode::Cicero { aggregation: Aggregation::Switch });
//! let topo = Topology::single_pod(8, 4, 4);
//! let dm = DomainMap::single(&topo);
//! let mut engine = Engine::build(cfg, topo, dm, 0);
//! engine.run(SimTime::from_nanos(u64::MAX));
//! ```

#![forbid(unsafe_code)]


pub mod audit;
pub mod config;
pub mod ctrl;
pub mod deploy;
pub mod engine;
pub mod experiment;
pub mod msg;
pub mod obs;
pub mod runtime;
pub mod switch;

/// Commonly used items.
pub mod prelude {
    pub use crate::audit::{audit_flow, Hazard, ReplayState, WalkOutcome};
    pub use crate::config::{
        Aggregation, CostModel, CryptoMode, EngineConfig, Mode, ReliabilityConfig,
    };
    pub use crate::ctrl::ControllerActor;
    pub use crate::deploy::{Deployment, NodeRole, PlannedNode};
    pub use crate::engine::{default_pod_engine, Engine, RunReport};
    pub use crate::experiment::{
        fig11_flow_completion, fig11d_switch_cpu, fig11d_switch_cpu_measured,
        fig12a_update_time, fig12b_event_locality, fig12c_runs, fig12d_runs,
        flow_setup_latency_ms, run_flow_completion, run_flow_completion_costed,
        segway_vs_cicero_md, FlowRun, ModeCost, ALL_MODES,
    };
    pub use crate::msg::{AckBody, Net, OrderedOp, PhaseInfo};
    pub use crate::obs::{
        check_event_linearizability, check_event_linearizability_with_restarts,
        delivery_sequences, events_per_domain, flow_latencies,
        retransmit_stats, unique_events, Cdf, Obs, RetransmitStats,
    };
    pub use crate::runtime::{bootstrap_keys, Directory, KeyMaterial, Shared};
    pub use crate::switch::SwitchActor;
    pub use simnet::time::{SimDuration, SimTime};
}

pub use prelude::*;
