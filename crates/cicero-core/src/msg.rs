//! The protocol message alphabet exchanged by simulated nodes, and the
//! consensus payload type.

use bft::message::{BftMessage, BftPayload, Digest};
use blscrypto::reshare::ReshareDealing;
use blscrypto::sha256::sha256_parts;
use substrate::buf::BytesMut;
use simnet::time::{SimDuration, SimTime};
use southbound::codec::{DecodeError, Wire};
use southbound::envelope::{QuorumSigned, ShareSigned, Signed};
use southbound::types::{
    ControllerId, DomainId, Event, EventId, FlowId, HostId, NetworkUpdate, Phase, SwitchId,
    UpdateId,
};

/// An acknowledgement body: switch `switch` applied update `update`
/// (paper §4.1 — verified acks drain dependency sets).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AckBody {
    /// The applied update.
    pub update: UpdateId,
    /// The acknowledging switch.
    pub switch: SwitchId,
}

impl Wire for AckBody {
    fn encode(&self, buf: &mut BytesMut) {
        self.update.encode(buf);
        self.switch.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(AckBody {
            update: UpdateId::decode(buf)?,
            switch: SwitchId::decode(buf)?,
        })
    }
}

/// A negative acknowledgement / state re-sync request: switch `switch`
/// holds a below-quorum share bucket for `update` and asks the control
/// plane to retransmit the missing signed shares (e.g. after loss or a
/// healed partition). `have` is how many distinct shares the switch holds,
/// so controllers can prioritize nearly-complete buckets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NackBody {
    /// The update the switch cannot yet apply.
    pub update: UpdateId,
    /// The requesting switch.
    pub switch: SwitchId,
    /// Distinct signature shares held so far.
    pub have: u32,
}

impl Wire for NackBody {
    fn encode(&self, buf: &mut BytesMut) {
        self.update.encode(buf);
        self.switch.encode(buf);
        self.have.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(NackBody {
            update: UpdateId::decode(buf)?,
            switch: SwitchId::decode(buf)?,
            have: u32::decode(buf)?,
        })
    }
}

/// A cross-domain handshake report: controller `controller` of domain
/// `domain` has seen every update of its segment `segment` of event
/// `event` acknowledged by the segment's switches. Upstream domains whose
/// boundary updates depend on that segment collect these from a quorum of
/// distinct downstream controllers before releasing (the handshake's
/// "downstream applied" half; see DESIGN.md §3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentBody {
    /// The event whose update list the segment belongs to.
    pub event: EventId,
    /// The segment's index within the event's full update list.
    pub segment: u32,
    /// The reporting controller's domain (the segment owner).
    pub domain: DomainId,
    /// The reporting controller.
    pub controller: ControllerId,
}

impl Wire for SegmentBody {
    fn encode(&self, buf: &mut BytesMut) {
        self.event.encode(buf);
        self.segment.encode(buf);
        self.domain.encode(buf);
        self.controller.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(SegmentBody {
            event: EventId::decode(buf)?,
            segment: u32::decode(buf)?,
            domain: DomainId::decode(buf)?,
            controller: ControllerId::decode(buf)?,
        })
    }
}

/// The handshake's receipt half: an upstream controller confirms it
/// received a [`SegmentBody`] report, stopping the downstream domain's
/// retransmission of it. Idempotent — sent for duplicates and for reports
/// arriving before (or after) the upstream barrier exists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReleaseBody {
    /// The event the receipt refers to.
    pub event: EventId,
    /// The confirmed segment index.
    pub segment: u32,
    /// The confirming controller's domain (the upstream domain).
    pub domain: DomainId,
    /// The confirming controller.
    pub controller: ControllerId,
}

impl Wire for ReleaseBody {
    fn encode(&self, buf: &mut BytesMut) {
        self.event.encode(buf);
        self.segment.encode(buf);
        self.domain.encode(buf);
        self.controller.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ReleaseBody {
            event: EventId::decode(buf)?,
            segment: u32::decode(buf)?,
            domain: DomainId::decode(buf)?,
            controller: ControllerId::decode(buf)?,
        })
    }
}

/// A Segway update: the network update plus the dependency metadata the
/// scheduler computed for it, threshold-signed *as one body* so a switch
/// cannot be lied to about what must precede it or whom to release next.
/// `gates` are the updates that must be applied (and announced by their
/// switch) before this one may go in; `notify` are the switches waiting on
/// *this* update, to be released with a signed [`ReadyBody`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegwayBody {
    /// The network update itself.
    pub update: NetworkUpdate,
    /// Prerequisites: `(update, the switch that applies it)`.
    pub gates: Vec<(UpdateId, SwitchId)>,
    /// Switches whose next segment this update releases.
    pub notify: Vec<SwitchId>,
}

impl Wire for SegwayBody {
    fn encode(&self, buf: &mut BytesMut) {
        self.update.encode(buf);
        (self.gates.len() as u32).encode(buf);
        for (u, s) in &self.gates {
            u.encode(buf);
            s.encode(buf);
        }
        (self.notify.len() as u32).encode(buf);
        for s in &self.notify {
            s.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let update = NetworkUpdate::decode(buf)?;
        let n = u32::decode(buf)?;
        let mut gates = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            gates.push((UpdateId::decode(buf)?, SwitchId::decode(buf)?));
        }
        let n = u32::decode(buf)?;
        let mut notify = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            notify.push(SwitchId::decode(buf)?);
        }
        Ok(SegwayBody {
            update,
            gates,
            notify,
        })
    }
}

/// A Segway switch-to-switch release: switch `from` applied `update` and
/// tells switch `to` (named in `from`'s threshold-signed `notify` list)
/// that the corresponding gate is open. Signed with `from`'s identity key;
/// the `to` binding stops a rogue switch replaying a captured ready at a
/// different victim. The same body, re-signed by the *recipient*, serves
/// as the receipt that stops `from`'s retransmission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadyBody {
    /// The applied (gating) update.
    pub update: UpdateId,
    /// The switch that applied it.
    pub from: SwitchId,
    /// The released switch.
    pub to: SwitchId,
}

impl Wire for ReadyBody {
    fn encode(&self, buf: &mut BytesMut) {
        self.update.encode(buf);
        self.from.encode(buf);
        self.to.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ReadyBody {
            update: UpdateId::decode(buf)?,
            from: SwitchId::decode(buf)?,
            to: SwitchId::decode(buf)?,
        })
    }
}

/// The per-domain control-plane state switches must track across
/// membership changes: phase, quorum size, aggregator. Distributed to
/// switches under the (membership-invariant) group public key, replacing
/// the paper's per-switch "master/slave role request" messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhaseInfo {
    /// Current membership phase.
    pub phase: Phase,
    /// Update quorum `⌊(n-1)/3⌋ + 1`.
    pub quorum: u32,
    /// The aggregator controller (lowest live identifier).
    pub aggregator: ControllerId,
}

impl Wire for PhaseInfo {
    fn encode(&self, buf: &mut BytesMut) {
        self.phase.encode(buf);
        self.quorum.encode(buf);
        self.aggregator.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(PhaseInfo {
            phase: Phase::decode(buf)?,
            quorum: u32::decode(buf)?,
            aggregator: ControllerId::decode(buf)?,
        })
    }
}

/// Operations totally ordered by each domain's atomic broadcast.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OrderedOp {
    /// A validated data-plane event.
    Event(Event),
    /// Membership: admit the controller with this (fresh) identifier,
    /// proposed by the bootstrap controller.
    AddController(ControllerId),
    /// Membership: remove a (suspected-faulty or retiring) controller.
    RemoveController(ControllerId),
}

impl Wire for OrderedOp {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            OrderedOp::Event(e) => {
                0u8.encode(buf);
                e.encode(buf);
            }
            OrderedOp::AddController(c) => {
                1u8.encode(buf);
                c.encode(buf);
            }
            OrderedOp::RemoveController(c) => {
                2u8.encode(buf);
                c.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(OrderedOp::Event(Event::decode(buf)?)),
            1 => Ok(OrderedOp::AddController(ControllerId::decode(buf)?)),
            2 => Ok(OrderedOp::RemoveController(ControllerId::decode(buf)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl BftPayload for OrderedOp {
    fn digest(&self) -> Digest {
        sha256_parts("CICERO_ORDERED_OP", &[&self.to_wire()])
    }
}

/// One durable control-plane fact in a controller's write-ahead log. A
/// snapshot is the same alphabet, compacted: the delivered-op archive plus
/// the ack/barrier facts that reconstruct the pending-update graph (see
/// DESIGN.md §Durability). Each record is Wire-encoded into one
/// checksummed `substrate::storage` frame.
#[derive(Clone, PartialEq, Debug)]
pub enum WalRecord {
    /// Consensus delivered `op` at sequence `seq` (logged *before* the op
    /// is acted on).
    Deliver {
        /// Consensus sequence number.
        seq: u64,
        /// The delivered operation.
        op: OrderedOp,
    },
    /// A verified acknowledgement completed `update`.
    Acked(UpdateId),
    /// A distinct downstream signer was counted toward releasing the
    /// cross-domain barrier `barrier`.
    BarrierSigner {
        /// The synthetic barrier update id.
        barrier: UpdateId,
        /// The reporting downstream domain.
        domain: DomainId,
        /// The reporting downstream controller.
        controller: ControllerId,
    },
    /// The local BFT replica entered `view`.
    BftView(u64),
    /// The local replica bound `(view, seq)` to a slot (`None` = noop
    /// filler) and cast its prepare vote.
    BftAccepted {
        /// View of the binding.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// The bound payload (`None` for a noop gap filler).
        op: Option<OrderedOp>,
    },
    /// The local replica collected a prepare quorum for
    /// `(view, seq, digest)` and cast its commit vote.
    BftPrepared {
        /// View of the certificate.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Slot digest.
        digest: [u8; 32],
    },
}

impl Wire for WalRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WalRecord::Deliver { seq, op } => {
                0u8.encode(buf);
                seq.encode(buf);
                op.encode(buf);
            }
            WalRecord::Acked(u) => {
                1u8.encode(buf);
                u.encode(buf);
            }
            WalRecord::BarrierSigner {
                barrier,
                domain,
                controller,
            } => {
                2u8.encode(buf);
                barrier.encode(buf);
                domain.encode(buf);
                controller.encode(buf);
            }
            WalRecord::BftView(v) => {
                3u8.encode(buf);
                v.encode(buf);
            }
            WalRecord::BftAccepted { view, seq, op } => {
                4u8.encode(buf);
                view.encode(buf);
                seq.encode(buf);
                op.is_some().encode(buf);
                if let Some(op) = op {
                    op.encode(buf);
                }
            }
            WalRecord::BftPrepared { view, seq, digest } => {
                5u8.encode(buf);
                view.encode(buf);
                seq.encode(buf);
                digest.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(WalRecord::Deliver {
                seq: u64::decode(buf)?,
                op: OrderedOp::decode(buf)?,
            }),
            1 => Ok(WalRecord::Acked(UpdateId::decode(buf)?)),
            2 => Ok(WalRecord::BarrierSigner {
                barrier: UpdateId::decode(buf)?,
                domain: DomainId::decode(buf)?,
                controller: ControllerId::decode(buf)?,
            }),
            3 => Ok(WalRecord::BftView(u64::decode(buf)?)),
            4 => {
                let view = u64::decode(buf)?;
                let seq = u64::decode(buf)?;
                let op = if bool::decode(buf)? {
                    Some(OrderedOp::decode(buf)?)
                } else {
                    None
                };
                Ok(WalRecord::BftAccepted { view, seq, op })
            }
            5 => Ok(WalRecord::BftPrepared {
                view: u64::decode(buf)?,
                seq: u64::decode(buf)?,
                digest: <[u8; 32]>::decode(buf)?,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// Durable switch-side journal records.
///
/// Switches keep a small WAL mirroring the controller one: applied updates
/// (so a restarted switch reboots with its flow table and dedup set intact)
/// plus the Segway release ledger. A ready is journaled *before* it goes on
/// the wire and its receipt *when* it arrives, so a switch restarting
/// mid-update resumes retransmitting un-receipted readies without ever
/// re-releasing a neighbor it already released (exactly-once release), and
/// an accepted incoming ready survives the restart — the receipt we sent
/// for it is a promise to remember it, since the sender stops
/// retransmitting on receipt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchWalRecord {
    /// The switch applied `update`, backed by `signers` signature shares.
    Applied {
        /// The applied update (full body: replay rebuilds the flow table).
        update: NetworkUpdate,
        /// Distinct signers backing the apply.
        signers: u32,
    },
    /// A Segway ready for gating update `update` was released to `to`.
    ReadySent {
        /// The gating update.
        update: UpdateId,
        /// The released neighbor.
        to: SwitchId,
    },
    /// `to` receipted the ready — retransmission can stop for good.
    ReadyReceipted {
        /// The gating update.
        update: UpdateId,
        /// The receipting neighbor.
        to: SwitchId,
    },
    /// A verified ready from `from` announcing `update` was accepted.
    ReadyIn {
        /// The gating update.
        update: UpdateId,
        /// The designated releaser that announced it.
        from: SwitchId,
    },
}

impl Wire for SwitchWalRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SwitchWalRecord::Applied { update, signers } => {
                0u8.encode(buf);
                update.encode(buf);
                signers.encode(buf);
            }
            SwitchWalRecord::ReadySent { update, to } => {
                1u8.encode(buf);
                update.encode(buf);
                to.encode(buf);
            }
            SwitchWalRecord::ReadyReceipted { update, to } => {
                2u8.encode(buf);
                update.encode(buf);
                to.encode(buf);
            }
            SwitchWalRecord::ReadyIn { update, from } => {
                3u8.encode(buf);
                update.encode(buf);
                from.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(SwitchWalRecord::Applied {
                update: NetworkUpdate::decode(buf)?,
                signers: u32::decode(buf)?,
            }),
            1 => Ok(SwitchWalRecord::ReadySent {
                update: UpdateId::decode(buf)?,
                to: SwitchId::decode(buf)?,
            }),
            2 => Ok(SwitchWalRecord::ReadyReceipted {
                update: UpdateId::decode(buf)?,
                to: SwitchId::decode(buf)?,
            }),
            3 => Ok(SwitchWalRecord::ReadyIn {
                update: UpdateId::decode(buf)?,
                from: SwitchId::decode(buf)?,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// Everything that travels between simulated nodes.
#[derive(Clone, Debug)]
pub enum Net {
    /// Harness → ingress ToR switch: a workload flow arrives.
    FlowArrival {
        /// Flow id.
        flow: FlowId,
        /// Source host.
        src: HostId,
        /// Destination host.
        dst: HostId,
        /// Flow size in bytes.
        bytes: u64,
        /// Precomputed data-plane transit latency of the flow's route.
        transit: SimDuration,
        /// Arrival time (for completion-latency accounting).
        start: SimTime,
    },
    /// Switch → itself (delayed): the flow finished transmitting.
    FlowDone {
        /// Flow id.
        flow: FlowId,
        /// Original arrival time.
        start: SimTime,
        /// Source host (for teardown events).
        src: HostId,
        /// Destination host.
        dst: HostId,
    },
    /// Switch → controller(s): a signed data-plane event.
    EventMsg(Signed<Event>),
    /// Controller → controller: a signed cross-domain event forward
    /// (paper §4.1, tagged `forwarded` inside the event).
    ForwardedEvent(Signed<Event>),
    /// Controller ↔ controller: consensus traffic. Tagged with the sender's
    /// membership phase so messages from a superseded consensus group are
    /// discarded after a membership change.
    Consensus {
        /// Sender's membership phase.
        phase: Phase,
        /// Sending controller (within the domain).
        from: ControllerId,
        /// The PBFT message.
        msg: Box<BftMessage<OrderedOp>>,
    },
    /// Controller → switch: a share-signed update (switch aggregation).
    UpdateMsg(ShareSigned<NetworkUpdate>),
    /// Controller → switch: an unauthenticated update (centralized /
    /// crash-tolerant baselines).
    UpdatePlain {
        /// The update.
        update: NetworkUpdate,
        /// Sending controller.
        from: ControllerId,
    },
    /// Controller → aggregator: a share-signed update to aggregate.
    UpdateToAggregator(ShareSigned<NetworkUpdate>),
    /// Controller → switch (Segway): a share-signed update *with* its
    /// gate/notify metadata; the switch quorum-aggregates and then gates
    /// application on signed neighbor readies instead of controller order.
    SegwayUpdate(ShareSigned<SegwayBody>),
    /// Switch → switch (Segway): a signed release — the sender applied the
    /// gating update named inside; retransmitted with backoff until
    /// receipted by a [`Net::SegwayReadyAck`].
    SegwayReady(Signed<ReadyBody>),
    /// Switch → switch (Segway): receipt for a [`Net::SegwayReady`] (the
    /// echoed body, signed by the recipient); stops its retransmission.
    SegwayReadyAck(Signed<ReadyBody>),
    /// Aggregator → switch: the quorum-aggregated update.
    UpdateAggregated(QuorumSigned<NetworkUpdate>),
    /// Switch → controller(s): signed application acknowledgement.
    AckMsg(Signed<AckBody>),
    /// Switch → controller(s): signed negative acknowledgement — a share
    /// bucket aged below quorum; please re-send the missing signed update
    /// (reliable-delivery layer, see DESIGN.md).
    UpdateNack(Signed<NackBody>),
    /// Controller → controller: liveness heartbeat.
    Heartbeat {
        /// Sender.
        from: ControllerId,
        /// Sender's current phase.
        phase: Phase,
    },
    /// Controller → controller: a share-redistribution dealing for the
    /// given phase (paper §4.3 — new shares, same group public key).
    Reshare {
        /// Target phase.
        phase: Phase,
        /// The dealing (commitment + per-recipient sub-shares).
        dealing: ReshareDealing,
    },
    /// Controller → aggregator: partial signature over the new
    /// [`PhaseInfo`] after a completed reshare.
    PhasePartial(ShareSigned<PhaseInfo>),
    /// Aggregator → switches: the quorum-signed phase notice.
    PhaseNotice(QuorumSigned<PhaseInfo>),
    /// Harness → switch: a physical port/link went down; the switch raises
    /// a signed `LinkFailure` event (paper Fig. 2).
    LinkDown {
        /// One endpoint (the receiving switch).
        a: SwitchId,
        /// The other endpoint.
        b: SwitchId,
    },
    /// Controller → upstream controllers: this domain's segment of an
    /// event's update list is fully applied (cross-domain ordering
    /// handshake; retransmitted with backoff until receipted).
    SegmentApplied(Signed<SegmentBody>),
    /// Upstream controller → downstream controller: receipt for a
    /// [`Net::SegmentApplied`] report (stops its retransmission).
    BoundaryRelease(Signed<ReleaseBody>),
    /// Harness → bootstrap controller: propose a membership change.
    MembershipCmd(OrderedOp),
    /// Bootstrap → newly added controller: the control-plane state a joiner
    /// needs (paper §4.3 step iv; topology and policies are shared state in
    /// the simulation, so the membership view is what travels).
    StateSync {
        /// The post-change membership view.
        view: controller::membership::ControlPlaneView,
    },
    /// Restarted/fresh replica → domain peers: "my durable log ends at
    /// consensus sequence `have`; send me what I missed" (snapshot-transfer
    /// catch-up; re-sent with the retry cadence until answered).
    SyncRequest {
        /// The requesting controller's domain.
        domain: DomainId,
        /// The requesting controller.
        from: ControllerId,
        /// Highest consensus sequence in the requester's durable state.
        have: u64,
    },
    /// Active peer → recovering replica: the delivered-op archive past the
    /// requester's frontier, plus the ack archive. Without the acks a
    /// disk-lost restart would replay every synced event as if freshly
    /// delivered and wait forever for update acknowledgements that were
    /// consumed before the crash.
    SyncReply {
        /// The answering controller.
        from: ControllerId,
        /// The answering replica's own delivery frontier.
        frontier: u64,
        /// `(seq, op)` pairs with `seq > have`, in delivery order.
        ops: Vec<(u64, OrderedOp)>,
        /// Every update id the answering replica has archived an ack for.
        acked: Vec<UpdateId>,
        /// Every counted barrier signer `(barrier, domain, controller)`.
        /// Downstream domains retransmit segment reports only to
        /// controllers with outstanding receipts, so a receipted-then-lost
        /// signer fact would otherwise never be re-learned after a
        /// disk-lost restart and its barrier would never release.
        signers: Vec<(UpdateId, DomainId, ControllerId)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use southbound::types::{DomainId, EventId, EventKind};

    #[test]
    fn ordered_op_digest_distinguishes_ops() {
        let e = Event {
            id: EventId(1),
            kind: EventKind::PolicyChange { policy: 9 },
            origin: DomainId(0),
            forwarded: false,
        };
        let a = OrderedOp::Event(e).digest();
        let mut e2 = e;
        e2.forwarded = true;
        let b = OrderedOp::Event(e2).digest();
        assert_ne!(a, b, "forwarded flag is part of identity");
        assert_ne!(
            OrderedOp::AddController(ControllerId(5)).digest(),
            OrderedOp::RemoveController(ControllerId(5)).digest()
        );
    }

    #[test]
    fn wal_record_round_trip() {
        let e = Event {
            id: EventId(7),
            kind: EventKind::PolicyChange { policy: 2 },
            origin: DomainId(1),
            forwarded: false,
        };
        let records = vec![
            WalRecord::Deliver {
                seq: 3,
                op: OrderedOp::Event(e),
            },
            WalRecord::Acked(UpdateId {
                event: EventId(7),
                seq: 1,
            }),
            WalRecord::BarrierSigner {
                barrier: UpdateId {
                    event: EventId(7),
                    seq: 0xFFFF_0001,
                },
                domain: DomainId(1),
                controller: ControllerId(3),
            },
            WalRecord::BftView(4),
            WalRecord::BftAccepted {
                view: 4,
                seq: 9,
                op: None,
            },
            WalRecord::BftAccepted {
                view: 4,
                seq: 10,
                op: Some(OrderedOp::AddController(ControllerId(6))),
            },
            WalRecord::BftPrepared {
                view: 4,
                seq: 9,
                digest: [0xAB; 32],
            },
        ];
        for r in records {
            assert_eq!(WalRecord::from_wire(&r.to_wire()).unwrap(), r);
        }
        assert!(WalRecord::from_wire(&[9, 9, 9]).is_err());
    }

    #[test]
    fn nack_body_round_trip() {
        let n = NackBody {
            update: UpdateId {
                event: EventId(12),
                seq: 3,
            },
            switch: SwitchId(4),
            have: 1,
        };
        assert_eq!(NackBody::from_wire(&n.to_wire()).unwrap(), n);
    }

    #[test]
    fn ack_body_round_trip() {
        let a = AckBody {
            update: UpdateId {
                event: EventId(3),
                seq: 1,
            },
            switch: SwitchId(7),
        };
        assert_eq!(AckBody::from_wire(&a.to_wire()).unwrap(), a);
    }

    #[test]
    fn segway_body_round_trip() {
        use southbound::types::{FlowAction, FlowMatch, FlowRule, NetworkUpdate, NextHop, UpdateKind};
        let b = SegwayBody {
            update: NetworkUpdate {
                id: UpdateId {
                    event: EventId(9),
                    seq: 2,
                },
                switch: SwitchId(3),
                kind: UpdateKind::Install(FlowRule {
                    matcher: FlowMatch {
                        src: HostId(1),
                        dst: HostId(5),
                    },
                    action: FlowAction::Forward(NextHop::Switch(SwitchId(4))),
                }),
            },
            gates: vec![
                (
                    UpdateId {
                        event: EventId(9),
                        seq: 3,
                    },
                    SwitchId(4),
                ),
                (
                    UpdateId {
                        event: EventId(9),
                        seq: 4,
                    },
                    SwitchId(5),
                ),
            ],
            notify: vec![SwitchId(1), SwitchId(2)],
        };
        assert_eq!(SegwayBody::from_wire(&b.to_wire()).unwrap(), b);
        let empty = SegwayBody {
            gates: Vec::new(),
            notify: Vec::new(),
            ..b
        };
        assert_eq!(SegwayBody::from_wire(&empty.to_wire()).unwrap(), empty);
    }

    #[test]
    fn ready_body_round_trip() {
        let r = ReadyBody {
            update: UpdateId {
                event: EventId(11),
                seq: 0,
            },
            from: SwitchId(6),
            to: SwitchId(2),
        };
        assert_eq!(ReadyBody::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn switch_wal_record_round_trip() {
        use southbound::types::{FlowAction, FlowMatch, FlowRule, NextHop, UpdateKind};
        let records = [
            SwitchWalRecord::Applied {
                update: NetworkUpdate {
                    id: UpdateId {
                        event: EventId(3),
                        seq: 1,
                    },
                    switch: SwitchId(2),
                    kind: UpdateKind::Install(FlowRule {
                        matcher: FlowMatch {
                            src: HostId(0),
                            dst: HostId(7),
                        },
                        action: FlowAction::Forward(NextHop::Switch(SwitchId(3))),
                    }),
                },
                signers: 4,
            },
            SwitchWalRecord::ReadySent {
                update: UpdateId {
                    event: EventId(3),
                    seq: 1,
                },
                to: SwitchId(5),
            },
            SwitchWalRecord::ReadyReceipted {
                update: UpdateId {
                    event: EventId(3),
                    seq: 1,
                },
                to: SwitchId(5),
            },
            SwitchWalRecord::ReadyIn {
                update: UpdateId {
                    event: EventId(3),
                    seq: 2,
                },
                from: SwitchId(1),
            },
        ];
        for r in records {
            assert_eq!(SwitchWalRecord::from_wire(&r.to_wire()).unwrap(), r);
        }
    }

    #[test]
    fn segment_body_round_trip() {
        let s = SegmentBody {
            event: EventId((7 << 32) | 3),
            segment: 2,
            domain: DomainId(1),
            controller: ControllerId(4),
        };
        assert_eq!(SegmentBody::from_wire(&s.to_wire()).unwrap(), s);
    }

    #[test]
    fn release_body_round_trip() {
        let r = ReleaseBody {
            event: EventId(99),
            segment: 0,
            domain: DomainId(0),
            controller: ControllerId(1),
        };
        assert_eq!(ReleaseBody::from_wire(&r.to_wire()).unwrap(), r);
    }
}
