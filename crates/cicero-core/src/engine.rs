//! The engine: builds a complete simulated deployment (switches +
//! per-domain control planes) from a topology, a domain partition and an
//! [`EngineConfig`], injects workloads, and runs it to completion.

use crate::config::{CryptoMode, EngineConfig, Mode};
use crate::ctrl::ControllerActor;
use crate::deploy::{self, NodeRole, RecoveryKit};
use crate::msg::Net;
use crate::obs::{retransmit_stats, Obs, RetransmitStats};
use crate::runtime::Shared;
use crate::switch::SwitchActor;
use controller::policy::DomainMap;
use netmodel::routing::route;
use netmodel::telekom;
use netmodel::topology::Topology;
use simnet::latency::LatencyModel;
use simnet::node::NodeId;
use simnet::sim::{Observation, Simulation};
use simnet::time::{SimDuration, SimTime};
use southbound::types::{ControllerId, DomainId, SwitchId};
use std::collections::BTreeMap;
use std::sync::Arc;
use workload::gen::FlowSpec;

/// Control-plane message latency model: pod-local 50 µs, intra-DC 250 µs,
/// inter-DC per the Deutsche Telekom backbone.
struct ControlLatency {
    /// `(dc, pod)` per node.
    loc: Vec<(u16, u16)>,
}

impl LatencyModel for ControlLatency {
    fn latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let (Some(&a), Some(&b)) = (
            self.loc.get(from.0 as usize),
            self.loc.get(to.0 as usize),
        ) else {
            return SimDuration::from_micros(250);
        };
        if a.0 != b.0 {
            telekom::site_latency(a.0, b.0)
        } else if a.1 != b.1 {
            SimDuration::from_micros(250)
        } else {
            SimDuration::from_micros(50)
        }
    }
}

/// The liveness watchdog's verdict on a [`Engine::run_reporting`] run.
///
/// A run *completes* when every injected flow resolved (completed or
/// denied) and no reliable-delivery work is outstanding anywhere — no
/// unacked or dependency-blocked update at any controller, no pending
/// signed event at any switch. It *stalls* when the watchdog sees
/// [`EngineConfig::watchdog_stall_slices`] consecutive progress-free
/// slices (or a drained event queue) while work is still outstanding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// All injected flows resolved and the delivery pipeline drained.
    pub completed: bool,
    /// The watchdog declared the run quiescent-but-undrained.
    pub stalled: bool,
    /// Simulated time when the run ended.
    pub end: SimTime,
    /// Flows injected into the simulation.
    pub injected_flows: usize,
    /// Flows that completed or were denied.
    pub resolved_flows: usize,
    /// Updates sent but never acknowledged (summed over controllers).
    pub unacked_updates: usize,
    /// Updates still blocked on dependencies (summed over controllers).
    pub waiting_updates: usize,
    /// Updates abandoned after retry-budget exhaustion.
    pub failed_updates: usize,
    /// Signed events switches are still retransmitting.
    pub outstanding_events: usize,
    /// Messages dropped at each node's inbox by the fault plan, indexed by
    /// node id (the simulator analogue of the threaded executor's
    /// mailbox-full drops).
    pub dropped_per_node: Vec<u64>,
    /// Reliable-delivery activity counters for the whole run.
    pub stats: RetransmitStats,
}

impl RunReport {
    /// Total messages dropped before delivery, summed over nodes.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_per_node.iter().sum()
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verdict = if self.completed {
            "completed"
        } else if self.stalled {
            "STALLED"
        } else {
            "horizon reached"
        };
        writeln!(
            f,
            "run {} at {}: {}/{} flows resolved",
            verdict, self.end, self.resolved_flows, self.injected_flows
        )?;
        writeln!(
            f,
            "  outstanding: {} unacked, {} waiting, {} failed updates; {} pending events; {} msgs dropped",
            self.unacked_updates,
            self.waiting_updates,
            self.failed_updates,
            self.outstanding_events,
            self.dropped_messages()
        )?;
        write!(
            f,
            "  recoveries: {} update rtx, {} ack rtx, {} event rtx, {} segment rtx, {} fwd rtx, {} nacks, {} resyncs, {} updates / {} events exhausted",
            self.stats.update_retransmits,
            self.stats.ack_retransmits,
            self.stats.event_retransmits,
            self.stats.segment_retransmits,
            self.stats.forward_retransmits,
            self.stats.nacks,
            self.stats.resyncs,
            self.stats.updates_exhausted,
            self.stats.events_exhausted
        )
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Outstanding {
    unacked: usize,
    waiting: usize,
    failed: usize,
    events: usize,
    /// Controllers still state-syncing after a restart.
    recovering: usize,
}

/// A scheduled node restart (crash-recovery experiments).
#[derive(Clone, Copy, Debug)]
enum PlannedRestart {
    Controller {
        at: SimTime,
        domain: DomainId,
        controller: ControllerId,
        disk_lost: bool,
    },
    Switch {
        at: SimTime,
        switch: SwitchId,
    },
}

impl PlannedRestart {
    fn at(&self) -> SimTime {
        match *self {
            PlannedRestart::Controller { at, .. } | PlannedRestart::Switch { at, .. } => at,
        }
    }
}

/// A fully built deployment ready to run.
pub struct Engine {
    sim: Simulation<Net, Obs>,
    shared: Arc<Shared>,
    switch_nodes: BTreeMap<SwitchId, NodeId>,
    controller_nodes: BTreeMap<(DomainId, ControllerId), NodeId>,
    bootstrap_nodes: BTreeMap<DomainId, NodeId>,
    injected_flows: usize,
    kit: RecoveryKit,
    /// Pending node restarts, kept sorted by time.
    restarts: Vec<PlannedRestart>,
}

impl Engine {
    /// Builds a deployment.
    ///
    /// `standby_controllers` extra controller actors per domain are created
    /// inactive, ready to be admitted by membership commands.
    ///
    /// # Panics
    ///
    /// Panics on structurally impossible configurations (e.g. Cicero with
    /// fewer than 4 controllers per domain).
    pub fn build(
        cfg: EngineConfig,
        topo: Topology,
        domain_map: DomainMap,
        standby_controllers: u32,
    ) -> Engine {
        let mut dep = deploy::plan(cfg, topo, domain_map, standby_controllers);
        // In-memory durable storage: controllers and switches WAL every
        // transition and can crash-recover, while the simulation stays
        // deterministic.
        dep.provision_storage(|_, _| substrate::storage::mem_disk());
        dep.provision_switch_storage(|_| substrate::storage::mem_disk());
        let kit = dep.recovery_kit();
        let seed = dep.shared.cfg.seed;
        let mut sim: Simulation<Net, Obs> =
            Simulation::new(seed, ControlLatency { loc: dep.locations });
        sim.set_cpu_bucket(dep.shared.cfg.cpu_bucket);

        let mut controller_nodes = BTreeMap::new();
        let mut switch_nodes = BTreeMap::new();
        for planned in dep.nodes {
            let node = match planned.role {
                NodeRole::Controller { domain, id, actor } => {
                    let node = sim.add_node(*actor);
                    controller_nodes.insert((domain, id), node);
                    node
                }
                NodeRole::Switch { id, actor } => {
                    let node = sim.add_node(*actor);
                    switch_nodes.insert(id, node);
                    node
                }
            };
            assert_eq!(node, planned.node, "node plan mismatch");
        }

        sim.start();
        Engine {
            sim,
            shared: dep.shared,
            switch_nodes,
            controller_nodes,
            bootstrap_nodes: dep.bootstrap_nodes,
            injected_flows: 0,
            kit,
            restarts: Vec::new(),
        }
    }

    /// The shared runtime context.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// The simulation node of a switch.
    pub fn switch_node(&self, s: SwitchId) -> NodeId {
        self.switch_nodes[&s]
    }

    /// The simulation node of a controller.
    pub fn controller_node(&self, d: DomainId, c: ControllerId) -> NodeId {
        self.controller_nodes[&(d, c)]
    }

    /// Injects the flows of a workload: each arrives at its source's ToR
    /// switch at its start time, with the route transit latency precomputed
    /// from the topology (data-plane forwarding is not what the protocol
    /// measures).
    pub fn inject_flows(&mut self, flows: &[FlowSpec]) {
        for f in flows {
            let Some(r) = route(&self.shared.topo, f.src, f.dst) else {
                continue;
            };
            let ingress = self.shared.topo.host(f.src).expect("known host").attached;
            let node = self.switch_nodes[&ingress];
            self.sim.inject(
                f.start,
                node,
                Net::FlowArrival {
                    flow: f.id,
                    src: f.src,
                    dst: f.dst,
                    bytes: f.bytes,
                    transit: r.latency,
                    start: f.start,
                },
            );
            self.injected_flows += 1;
        }
    }

    /// Installs a fault plan (message drops/duplicates, scheduled crashes).
    pub fn set_faults(&mut self, faults: simnet::fault::FaultPlan) {
        self.sim.set_faults(faults);
    }

    /// Schedules controller `(d, c)` to restart at `at` from its durable
    /// disk (crash it first via the fault plan). With `disk_lost` the disk
    /// is wiped before reboot: recovery then relies entirely on the peer
    /// snapshot transfer.
    pub fn schedule_restart(
        &mut self,
        at: SimTime,
        d: DomainId,
        c: ControllerId,
        disk_lost: bool,
    ) {
        self.restarts.push(PlannedRestart::Controller {
            at,
            domain: d,
            controller: c,
            disk_lost,
        });
        self.restarts.sort_by_key(PlannedRestart::at);
    }

    /// Schedules switch `s` to restart at `at` from its durable disk
    /// (crash it first via the fault plan). Switch disks always survive —
    /// a switch that loses its disk is a replacement machine and models as
    /// a fresh switch.
    pub fn schedule_switch_restart(&mut self, at: SimTime, s: SwitchId) {
        self.restarts.push(PlannedRestart::Switch { at, switch: s });
        self.restarts.sort_by_key(PlannedRestart::at);
    }

    /// Registers a customization re-applied to every controller rebuilt
    /// for a restart (see [`RecoveryKit::on_rebuild`]): harnesses that
    /// mutate controllers after build — a non-default scheduler, firewall
    /// entries — must mirror those mutations here or a restarted
    /// controller rejoins with plan-time defaults.
    pub fn set_rebuild_hook(
        &mut self,
        f: impl Fn(&mut crate::ctrl::ControllerActor) + Send + Sync + 'static,
    ) {
        self.kit.on_rebuild(f);
    }

    /// Rebuilds and revives controller `(d, c)` right now from its durable
    /// disk (the imperative form of [`Engine::schedule_restart`]).
    pub fn restart_controller(&mut self, d: DomainId, c: ControllerId, disk_lost: bool) {
        let (node, actor) = self.kit.rebuild(d, c, disk_lost);
        self.sim.revive_node(node, actor);
    }

    /// Rebuilds and revives switch `s` right now from its durable disk
    /// (the imperative form of [`Engine::schedule_switch_restart`]): WAL
    /// replay restores the flow table and the Segway release journal, so
    /// the revived switch never re-releases a neighbor it already
    /// released.
    pub fn restart_switch(&mut self, s: SwitchId) {
        let (node, actor) = self.kit.rebuild_switch(s);
        self.sim.revive_node(node, actor);
    }

    /// Performs every scheduled restart due by `cursor`. All events up to
    /// `cursor` have been run, so the clock can coast to each restart's
    /// exact instant even when the queue is empty (a drained network must
    /// not leave a scheduled restart forever in the future).
    fn perform_due_restarts(&mut self, cursor: SimTime) {
        while let Some(&r) = self.restarts.first() {
            if r.at() > cursor {
                break;
            }
            self.sim.advance_to(r.at());
            self.restarts.remove(0);
            match r {
                PlannedRestart::Controller {
                    domain,
                    controller,
                    disk_lost,
                    ..
                } => self.restart_controller(domain, controller, disk_lost),
                PlannedRestart::Switch { switch, .. } => self.restart_switch(switch),
            }
        }
    }

    /// Fails the link `a`–`b` at `at`: switch `a` detects the port-down and
    /// raises a signed `LinkFailure` event (paper Fig. 2 scenario).
    pub fn fail_link(&mut self, at: SimTime, a: SwitchId, b: SwitchId) {
        let node = self.switch_nodes[&a];
        self.sim.inject(at, node, Net::LinkDown { a, b });
    }

    /// Injects a membership command at a domain's bootstrap controller.
    pub fn inject_membership(&mut self, at: SimTime, domain: DomainId, op: crate::msg::OrderedOp) {
        let node = self.bootstrap_nodes[&domain];
        self.sim.inject(at, node, Net::MembershipCmd(op));
    }

    /// Injects an arbitrary message (tests: rogue controllers, raw events).
    pub fn inject_raw(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: Net) {
        if matches!(msg, Net::FlowArrival { .. }) {
            self.injected_flows += 1;
        }
        self.sim.inject_from(at, from, to, msg);
    }

    /// Runs until the event queue drains (bounded by `horizon`).
    pub fn run(&mut self, horizon: SimTime) {
        let _ = self.drive(horizon, false);
    }

    /// Runs with the liveness watchdog: advances in
    /// [`EngineConfig::watchdog_slice`] steps, declaring the run *complete*
    /// when all flows resolved and the delivery pipeline drained, and
    /// *stalled* when [`EngineConfig::watchdog_stall_slices`] consecutive
    /// slices elapse without a single new observation while work is still
    /// outstanding. Either way it returns a [`RunReport`] instead of
    /// silently handing back a half-done simulation.
    pub fn run_reporting(&mut self, horizon: SimTime) -> RunReport {
        self.drive(horizon, true)
    }

    /// The single run loop behind [`Engine::run`] and
    /// [`Engine::run_reporting`]. Without the watchdog it simply advances
    /// the simulation to `horizon` (no early exit — membership-only runs
    /// with zero flows must still reach the horizon); with it, slices the
    /// run and checks completion/stall between slices.
    fn drive(&mut self, horizon: SimTime, watchdog: bool) -> RunReport {
        let slice = self.shared.cfg.watchdog_slice;
        let stall_slices = self.shared.cfg.watchdog_stall_slices.max(1);
        let mut last_obs = self.sim.observations().len();
        let mut quiet: u32 = 0;
        let mut completed = false;
        let mut stalled = false;
        let mut cursor = self.sim.now();
        loop {
            if watchdog && self.restarts.is_empty() {
                let out = self.snapshot_outstanding();
                let resolved = self.resolved_flows();
                if resolved >= self.injected_flows
                    && out.unacked == 0
                    && out.waiting == 0
                    && out.events == 0
                    && out.recovering == 0
                {
                    completed = true;
                    break;
                }
            }
            if cursor >= horizon {
                break;
            }
            // A pending scheduled restart keeps the run alive even when the
            // event queue drains: the revived controller creates new events.
            let next_restart = self.restarts.first().map(PlannedRestart::at);
            let restart_pending = next_restart.map(|t| t <= horizon).unwrap_or(false);
            match self.sim.next_event_at() {
                // Drained queue with outstanding work: nothing will ever
                // make progress again.
                None if !restart_pending => {
                    stalled = watchdog;
                    break;
                }
                Some(at) if at > horizon && !restart_pending => break,
                _ => {}
            }
            cursor = if watchdog {
                std::cmp::min(cursor + slice, horizon)
            } else {
                horizon
            };
            if let Some(t) = next_restart {
                cursor = std::cmp::min(cursor, std::cmp::max(t, self.sim.now()));
            }
            self.sim.run_until(cursor);
            self.perform_due_restarts(cursor);
            if watchdog {
                let n = self.sim.observations().len();
                if !self.restarts.is_empty() {
                    // Quietly waiting out the clock until a scheduled
                    // restart is not a stall.
                    last_obs = n;
                    quiet = 0;
                } else if n == last_obs {
                    quiet += 1;
                    if quiet >= stall_slices {
                        stalled = true;
                        break;
                    }
                } else {
                    last_obs = n;
                    quiet = 0;
                }
            }
        }
        let out = self.snapshot_outstanding();
        RunReport {
            completed,
            stalled,
            end: self.sim.now(),
            injected_flows: self.injected_flows,
            resolved_flows: self.resolved_flows(),
            unacked_updates: out.unacked,
            waiting_updates: out.waiting,
            failed_updates: out.failed,
            outstanding_events: out.events,
            dropped_per_node: self.sim.dropped_counts(),
            stats: retransmit_stats(self.sim.observations()),
        }
    }

    fn resolved_flows(&self) -> usize {
        self.sim
            .observations()
            .iter()
            .filter(|o| {
                matches!(
                    o.value,
                    Obs::FlowCompleted { .. } | Obs::FlowDenied { .. }
                )
            })
            .count()
    }

    fn snapshot_outstanding(&mut self) -> Outstanding {
        // Crashed nodes are excluded: a dead replica's local bookkeeping can
        // never drain, but it is not outstanding protocol work either — its
        // live peers carry the flow to completion.
        let mut out = Outstanding::default();
        let controllers: Vec<((DomainId, ControllerId), NodeId)> = self
            .controller_nodes
            .iter()
            .map(|(&k, &n)| (k, n))
            .collect();
        for ((d, c), node) in controllers {
            if self.sim.is_crashed(node) {
                continue;
            }
            let (unacked, waiting, failed, recovering) = self.with_controller(d, c, |ca| {
                let p = ca.pending();
                (
                    p.in_flight_count(),
                    p.waiting_count(),
                    p.failed_count(),
                    ca.is_recovering(),
                )
            });
            out.unacked += unacked;
            out.waiting += waiting;
            out.failed += failed;
            out.recovering += usize::from(recovering);
        }
        let switches: Vec<(SwitchId, NodeId)> =
            self.switch_nodes.iter().map(|(&s, &n)| (s, n)).collect();
        for (s, node) in switches {
            if self.sim.is_crashed(node) {
                continue;
            }
            out.events += self.with_switch(s, |sw| sw.outstanding_event_count());
        }
        out
    }

    /// Observations so far.
    pub fn observations(&self) -> &[Observation<Obs>] {
        self.sim.observations()
    }

    /// Total control-plane messages delivered so far (experiment message
    /// cost; includes retransmissions, excludes drops and timers).
    pub fn delivered_messages(&self) -> u64 {
        self.sim.delivered_count()
    }

    /// CPU utilization series of a switch (paper Fig. 11d).
    pub fn switch_cpu(&self, s: SwitchId) -> Vec<f64> {
        self.sim.cpu_utilization(self.switch_nodes[&s])
    }

    /// Mean CPU utilization across all switches per bucket.
    pub fn mean_switch_cpu(&self) -> Vec<f64> {
        let series: Vec<Vec<f64>> = self
            .switch_nodes
            .values()
            .map(|&n| self.sim.cpu_utilization(n))
            .collect();
        let len = series.iter().map(Vec::len).max().unwrap_or(0);
        (0..len)
            .map(|i| {
                let sum: f64 = series.iter().map(|s| s.get(i).copied().unwrap_or(0.0)).sum();
                sum / series.len().max(1) as f64
            })
            .collect()
    }

    /// Runs `f` against a switch actor (tests).
    pub fn with_switch<R>(&mut self, s: SwitchId, f: impl FnOnce(&mut SwitchActor) -> R) -> R {
        let node = self.switch_nodes[&s];
        self.sim.with_actor::<SwitchActor, R>(node, f)
    }

    /// Runs `f` against a controller actor (tests / app configuration).
    pub fn with_controller<R>(
        &mut self,
        d: DomainId,
        c: ControllerId,
        f: impl FnOnce(&mut ControllerActor) -> R,
    ) -> R {
        let node = self.controller_nodes[&(d, c)];
        self.sim.with_actor::<ControllerActor, R>(node, f)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

/// Convenience: a default single-pod engine for tests and examples.
pub fn default_pod_engine(mode: Mode, crypto: CryptoMode, racks: u16) -> Engine {
    let mut cfg = EngineConfig::for_mode(mode);
    cfg.crypto = crypto;
    let topo = Topology::single_pod(racks, 4, 4);
    let dm = DomainMap::single(&topo);
    Engine::build(cfg, topo, dm, 0)
}
