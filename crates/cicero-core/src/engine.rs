//! The engine: builds a complete simulated deployment (switches +
//! per-domain control planes) from a topology, a domain partition and an
//! [`EngineConfig`], injects workloads, and runs it to completion.

use crate::config::{CryptoMode, EngineConfig, Mode};
use crate::ctrl::ControllerActor;
use crate::msg::Net;
use crate::obs::{retransmit_stats, Obs, RetransmitStats};
use crate::runtime::{bootstrap_keys, Directory, Shared};
use crate::switch::{initial_phase_info, SwitchActor};
use blscrypto::bls::KeyShare;
use controller::membership::ControlPlaneView;
use controller::policy::{DomainMap, GlobalDomainPolicy};
use netmodel::routing::route;
use netmodel::telekom;
use netmodel::topology::Topology;
use simnet::latency::LatencyModel;
use simnet::node::NodeId;
use simnet::sim::{Observation, Simulation};
use simnet::time::{SimDuration, SimTime};
use southbound::types::{ControllerId, DomainId, SwitchId};
use std::collections::BTreeMap;
use std::sync::Arc;
use workload::gen::FlowSpec;

/// Control-plane message latency model: pod-local 50 µs, intra-DC 250 µs,
/// inter-DC per the Deutsche Telekom backbone.
struct ControlLatency {
    /// `(dc, pod)` per node.
    loc: Vec<(u16, u16)>,
}

impl LatencyModel for ControlLatency {
    fn latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let (Some(&a), Some(&b)) = (
            self.loc.get(from.0 as usize),
            self.loc.get(to.0 as usize),
        ) else {
            return SimDuration::from_micros(250);
        };
        if a.0 != b.0 {
            telekom::site_latency(a.0, b.0)
        } else if a.1 != b.1 {
            SimDuration::from_micros(250)
        } else {
            SimDuration::from_micros(50)
        }
    }
}

/// The liveness watchdog's verdict on a [`Engine::run_reporting`] run.
///
/// A run *completes* when every injected flow resolved (completed or
/// denied) and no reliable-delivery work is outstanding anywhere — no
/// unacked or dependency-blocked update at any controller, no pending
/// signed event at any switch. It *stalls* when the watchdog sees
/// [`EngineConfig::watchdog_stall_slices`] consecutive progress-free
/// slices (or a drained event queue) while work is still outstanding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// All injected flows resolved and the delivery pipeline drained.
    pub completed: bool,
    /// The watchdog declared the run quiescent-but-undrained.
    pub stalled: bool,
    /// Simulated time when the run ended.
    pub end: SimTime,
    /// Flows injected into the simulation.
    pub injected_flows: usize,
    /// Flows that completed or were denied.
    pub resolved_flows: usize,
    /// Updates sent but never acknowledged (summed over controllers).
    pub unacked_updates: usize,
    /// Updates still blocked on dependencies (summed over controllers).
    pub waiting_updates: usize,
    /// Updates abandoned after retry-budget exhaustion.
    pub failed_updates: usize,
    /// Signed events switches are still retransmitting.
    pub outstanding_events: usize,
    /// Reliable-delivery activity counters for the whole run.
    pub stats: RetransmitStats,
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verdict = if self.completed {
            "completed"
        } else if self.stalled {
            "STALLED"
        } else {
            "horizon reached"
        };
        writeln!(
            f,
            "run {} at {}: {}/{} flows resolved",
            verdict, self.end, self.resolved_flows, self.injected_flows
        )?;
        writeln!(
            f,
            "  outstanding: {} unacked, {} waiting, {} failed updates; {} pending events",
            self.unacked_updates,
            self.waiting_updates,
            self.failed_updates,
            self.outstanding_events
        )?;
        write!(
            f,
            "  recoveries: {} update rtx, {} ack rtx, {} event rtx, {} segment rtx, {} fwd rtx, {} nacks, {} resyncs, {} updates / {} events exhausted",
            self.stats.update_retransmits,
            self.stats.ack_retransmits,
            self.stats.event_retransmits,
            self.stats.segment_retransmits,
            self.stats.forward_retransmits,
            self.stats.nacks,
            self.stats.resyncs,
            self.stats.updates_exhausted,
            self.stats.events_exhausted
        )
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Outstanding {
    unacked: usize,
    waiting: usize,
    failed: usize,
    events: usize,
}

/// A fully built deployment ready to run.
pub struct Engine {
    sim: Simulation<Net, Obs>,
    shared: Arc<Shared>,
    switch_nodes: BTreeMap<SwitchId, NodeId>,
    controller_nodes: BTreeMap<(DomainId, ControllerId), NodeId>,
    bootstrap_nodes: BTreeMap<DomainId, NodeId>,
    injected_flows: usize,
}

impl Engine {
    /// Builds a deployment.
    ///
    /// `standby_controllers` extra controller actors per domain are created
    /// inactive, ready to be admitted by membership commands.
    ///
    /// # Panics
    ///
    /// Panics on structurally impossible configurations (e.g. Cicero with
    /// fewer than 4 controllers per domain).
    pub fn build(
        cfg: EngineConfig,
        topo: Topology,
        domain_map: DomainMap,
        standby_controllers: u32,
    ) -> Engine {
        let domain_map = if cfg.mode == Mode::Centralized {
            DomainMap::single(&topo)
        } else {
            domain_map
        };
        let controllers_per_domain = match cfg.mode {
            Mode::Centralized => 1,
            _ => cfg.controllers_per_domain,
        };
        if cfg.mode.is_cicero() {
            assert!(
                controllers_per_domain >= 4,
                "Cicero requires at least 4 controllers per domain (paper §3.2)"
            );
        }
        let topo = Arc::new(topo);
        let domains: Vec<DomainId> = domain_map.domains();

        // ---- plan node ids deterministically -------------------------
        // Controllers first (domain asc, id asc, standbys after members),
        // then switches (id asc).
        let mut next_node = 0u32;
        let mut dir = Directory::default();
        let mut members_per_domain: BTreeMap<DomainId, Vec<ControllerId>> = BTreeMap::new();
        for &d in &domains {
            let members: Vec<ControllerId> =
                (1..=controllers_per_domain).map(ControllerId).collect();
            for &c in &members {
                dir.controller_node.insert((d, c), NodeId(next_node));
                next_node += 1;
            }
            for extra in 0..standby_controllers {
                let c = ControllerId(controllers_per_domain + 1 + extra);
                dir.controller_node.insert((d, c), NodeId(next_node));
                next_node += 1;
            }
            members_per_domain.insert(d, members.clone());
            dir.initial_members.insert(d, members);
        }
        for s in topo.switches() {
            dir.switch_node.insert(s.id, NodeId(next_node));
            next_node += 1;
            let d = domain_map
                .domain_of(s.id)
                .expect("every switch is assigned a domain");
            dir.domain_of_switch.insert(s.id, d);
        }

        // ---- key ceremony --------------------------------------------
        let switch_ids: Vec<SwitchId> = topo.switches().iter().map(|s| s.id).collect();
        let (keys, mut secrets) =
            bootstrap_keys(cfg.crypto, &switch_ids, &members_per_domain, cfg.seed);

        // ---- latency model --------------------------------------------
        // Controllers sit with their domain (first switch's location).
        let mut loc: Vec<(u16, u16)> = vec![(0, 0); next_node as usize];
        for (&(d, _), &node) in &dir.controller_node {
            let first_switch = domain_map.switches_of(d).first().copied();
            let l = first_switch
                .and_then(|s| topo.switch(s))
                .map(|s| (s.loc.dc, s.loc.pod))
                .unwrap_or((0, 0));
            loc[node.0 as usize] = l;
        }
        for s in topo.switches() {
            let node = dir.switch_node[&s.id];
            loc[node.0 as usize] = (s.loc.dc, s.loc.pod);
        }

        let policy = Arc::new(GlobalDomainPolicy::new(domain_map));
        let shared = Arc::new(Shared {
            cfg: cfg.clone(),
            topo: Arc::clone(&topo),
            policy,
            dir,
            keys,
        });

        // ---- spawn actors ---------------------------------------------
        let mut sim: Simulation<Net, Obs> =
            Simulation::new(cfg.seed, ControlLatency { loc });
        sim.set_cpu_bucket(cfg.cpu_bucket);

        let mut controller_nodes = BTreeMap::new();
        let mut bootstrap_nodes = BTreeMap::new();
        for &d in &domains {
            let n_members = members_per_domain[&d].len() as u32;
            let view = ControlPlaneView::initial(n_members);
            for &c in &members_per_domain[&d] {
                let identity = secrets.controller_sk.remove(&(d, c));
                let share: Option<KeyShare> = secrets.domain_dkg.get(&d).map(|dkg| {
                    dkg.participants[(c.0 - 1) as usize].share.clone()
                });
                let actor = ControllerActor::new(
                    Arc::clone(&shared),
                    d,
                    c,
                    identity,
                    share,
                    view.clone(),
                    true,
                );
                let node = sim.add_node(actor);
                assert_eq!(node, shared.dir.controller(d, c), "node plan mismatch");
                controller_nodes.insert((d, c), node);
                if c == view.bootstrap() {
                    bootstrap_nodes.insert(d, node);
                }
            }
            for extra in 0..standby_controllers {
                let c = ControllerId(n_members + 1 + extra);
                let actor = ControllerActor::new(
                    Arc::clone(&shared),
                    d,
                    c,
                    None,
                    None,
                    view.clone(),
                    false,
                );
                let node = sim.add_node(actor);
                assert_eq!(node, shared.dir.controller(d, c), "node plan mismatch");
                controller_nodes.insert((d, c), node);
            }
        }
        let mut switch_nodes = BTreeMap::new();
        for s in topo.switches() {
            let d = shared.dir.domain_of_switch[&s.id];
            let n_members = members_per_domain[&d].len() as u32;
            let view = ControlPlaneView::initial(n_members);
            let key = secrets.switch_sk.remove(&s.id);
            let actor = SwitchActor::new(
                Arc::clone(&shared),
                s.id,
                d,
                key,
                initial_phase_info(&view),
            );
            let node = sim.add_node(actor);
            assert_eq!(node, shared.dir.switch(s.id), "node plan mismatch");
            switch_nodes.insert(s.id, node);
        }

        sim.start();
        Engine {
            sim,
            shared,
            switch_nodes,
            controller_nodes,
            bootstrap_nodes,
            injected_flows: 0,
        }
    }

    /// The shared runtime context.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// The simulation node of a switch.
    pub fn switch_node(&self, s: SwitchId) -> NodeId {
        self.switch_nodes[&s]
    }

    /// The simulation node of a controller.
    pub fn controller_node(&self, d: DomainId, c: ControllerId) -> NodeId {
        self.controller_nodes[&(d, c)]
    }

    /// Injects the flows of a workload: each arrives at its source's ToR
    /// switch at its start time, with the route transit latency precomputed
    /// from the topology (data-plane forwarding is not what the protocol
    /// measures).
    pub fn inject_flows(&mut self, flows: &[FlowSpec]) {
        for f in flows {
            let Some(r) = route(&self.shared.topo, f.src, f.dst) else {
                continue;
            };
            let ingress = self.shared.topo.host(f.src).expect("known host").attached;
            let node = self.switch_nodes[&ingress];
            self.sim.inject(
                f.start,
                node,
                Net::FlowArrival {
                    flow: f.id,
                    src: f.src,
                    dst: f.dst,
                    bytes: f.bytes,
                    transit: r.latency,
                    start: f.start,
                },
            );
            self.injected_flows += 1;
        }
    }

    /// Installs a fault plan (message drops/duplicates, scheduled crashes).
    pub fn set_faults(&mut self, faults: simnet::fault::FaultPlan) {
        self.sim.set_faults(faults);
    }

    /// Fails the link `a`–`b` at `at`: switch `a` detects the port-down and
    /// raises a signed `LinkFailure` event (paper Fig. 2 scenario).
    pub fn fail_link(&mut self, at: SimTime, a: SwitchId, b: SwitchId) {
        let node = self.switch_nodes[&a];
        self.sim.inject(at, node, Net::LinkDown { a, b });
    }

    /// Injects a membership command at a domain's bootstrap controller.
    pub fn inject_membership(&mut self, at: SimTime, domain: DomainId, op: crate::msg::OrderedOp) {
        let node = self.bootstrap_nodes[&domain];
        self.sim.inject(at, node, Net::MembershipCmd(op));
    }

    /// Injects an arbitrary message (tests: rogue controllers, raw events).
    pub fn inject_raw(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: Net) {
        if matches!(msg, Net::FlowArrival { .. }) {
            self.injected_flows += 1;
        }
        self.sim.inject_from(at, from, to, msg);
    }

    /// Runs until the event queue drains (bounded by `horizon`).
    pub fn run(&mut self, horizon: SimTime) {
        self.sim.run_until(horizon);
    }

    /// Runs with the liveness watchdog: advances in
    /// [`EngineConfig::watchdog_slice`] steps, declaring the run *complete*
    /// when all flows resolved and the delivery pipeline drained, and
    /// *stalled* when [`EngineConfig::watchdog_stall_slices`] consecutive
    /// slices elapse without a single new observation while work is still
    /// outstanding. Either way it returns a [`RunReport`] instead of
    /// silently handing back a half-done simulation.
    pub fn run_reporting(&mut self, horizon: SimTime) -> RunReport {
        let slice = self.shared.cfg.watchdog_slice;
        let stall_slices = self.shared.cfg.watchdog_stall_slices.max(1);
        let mut last_obs = self.sim.observations().len();
        let mut quiet: u32 = 0;
        let mut completed = false;
        let mut stalled = false;
        let mut cursor = self.sim.now();
        loop {
            let out = self.snapshot_outstanding();
            let resolved = self.resolved_flows();
            if resolved >= self.injected_flows
                && out.unacked == 0
                && out.waiting == 0
                && out.events == 0
            {
                completed = true;
                break;
            }
            if cursor >= horizon {
                break;
            }
            match self.sim.next_event_at() {
                // Drained queue with outstanding work: nothing will ever
                // make progress again.
                None => {
                    stalled = true;
                    break;
                }
                Some(at) if at > horizon => break,
                Some(_) => {}
            }
            cursor = std::cmp::min(cursor + slice, horizon);
            self.sim.run_until(cursor);
            let n = self.sim.observations().len();
            if n == last_obs {
                quiet += 1;
                if quiet >= stall_slices {
                    stalled = true;
                    break;
                }
            } else {
                last_obs = n;
                quiet = 0;
            }
        }
        let out = self.snapshot_outstanding();
        RunReport {
            completed,
            stalled,
            end: self.sim.now(),
            injected_flows: self.injected_flows,
            resolved_flows: self.resolved_flows(),
            unacked_updates: out.unacked,
            waiting_updates: out.waiting,
            failed_updates: out.failed,
            outstanding_events: out.events,
            stats: retransmit_stats(self.sim.observations()),
        }
    }

    fn resolved_flows(&self) -> usize {
        self.sim
            .observations()
            .iter()
            .filter(|o| {
                matches!(
                    o.value,
                    Obs::FlowCompleted { .. } | Obs::FlowDenied { .. }
                )
            })
            .count()
    }

    fn snapshot_outstanding(&mut self) -> Outstanding {
        // Crashed nodes are excluded: a dead replica's local bookkeeping can
        // never drain, but it is not outstanding protocol work either — its
        // live peers carry the flow to completion.
        let mut out = Outstanding::default();
        let controllers: Vec<((DomainId, ControllerId), NodeId)> = self
            .controller_nodes
            .iter()
            .map(|(&k, &n)| (k, n))
            .collect();
        for ((d, c), node) in controllers {
            if self.sim.is_crashed(node) {
                continue;
            }
            let (unacked, waiting, failed) = self.with_controller(d, c, |ca| {
                let p = ca.pending();
                (p.in_flight_count(), p.waiting_count(), p.failed_count())
            });
            out.unacked += unacked;
            out.waiting += waiting;
            out.failed += failed;
        }
        let switches: Vec<(SwitchId, NodeId)> =
            self.switch_nodes.iter().map(|(&s, &n)| (s, n)).collect();
        for (s, node) in switches {
            if self.sim.is_crashed(node) {
                continue;
            }
            out.events += self.with_switch(s, |sw| sw.outstanding_event_count());
        }
        out
    }

    /// Observations so far.
    pub fn observations(&self) -> &[Observation<Obs>] {
        self.sim.observations()
    }

    /// CPU utilization series of a switch (paper Fig. 11d).
    pub fn switch_cpu(&self, s: SwitchId) -> Vec<f64> {
        self.sim.cpu_utilization(self.switch_nodes[&s])
    }

    /// Mean CPU utilization across all switches per bucket.
    pub fn mean_switch_cpu(&self) -> Vec<f64> {
        let series: Vec<Vec<f64>> = self
            .switch_nodes
            .values()
            .map(|&n| self.sim.cpu_utilization(n))
            .collect();
        let len = series.iter().map(Vec::len).max().unwrap_or(0);
        (0..len)
            .map(|i| {
                let sum: f64 = series.iter().map(|s| s.get(i).copied().unwrap_or(0.0)).sum();
                sum / series.len().max(1) as f64
            })
            .collect()
    }

    /// Runs `f` against a switch actor (tests).
    pub fn with_switch<R>(&mut self, s: SwitchId, f: impl FnOnce(&mut SwitchActor) -> R) -> R {
        let node = self.switch_nodes[&s];
        self.sim.with_actor::<SwitchActor, R>(node, f)
    }

    /// Runs `f` against a controller actor (tests / app configuration).
    pub fn with_controller<R>(
        &mut self,
        d: DomainId,
        c: ControllerId,
        f: impl FnOnce(&mut ControllerActor) -> R,
    ) -> R {
        let node = self.controller_nodes[&(d, c)];
        self.sim.with_actor::<ControllerActor, R>(node, f)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

/// Convenience: a default single-pod engine for tests and examples.
pub fn default_pod_engine(mode: Mode, crypto: CryptoMode, racks: u16) -> Engine {
    let mut cfg = EngineConfig::for_mode(mode);
    cfg.crypto = crypto;
    let topo = Topology::single_pod(racks, 4, 4);
    let dm = DomainMap::single(&topo);
    Engine::build(cfg, topo, dm, 0)
}
