//! Consistency auditing: replaying the sequence of applied updates and
//! checking, after every step, that no *transient* data-plane hazard exists
//! (the problems of paper Table 1 / Figs. 1–3).
//!
//! A hazard is judged from the perspective of a packet entering at the
//! ingress switch the moment the intermediate state is live:
//!
//! * **black hole** — the ingress forwards, but some switch along the walk
//!   has no rule (Fig. 2's packet loss);
//! * **loop** — the walk revisits a switch (Fig. 2's unintended loop);
//! * **policy violation** — the walk delivers a flow the firewall policy
//!   denies (Fig. 1's broken firewall);
//! * **misdelivery** — the walk delivers to the wrong host.
//!
//! Congestion hazards (Fig. 3) are checked separately with
//! [`netmodel::linkload::LinkLoad`] over the same replay.

use crate::obs::Obs;
use simnet::sim::Observation;
use southbound::types::{
    FlowAction, FlowMatch, HostId, NextHop, SwitchId, UpdateKind,
};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of walking one flow through a (possibly partial) rule state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalkOutcome {
    /// The ingress has no rule: the packet is buffered/raised, not lost.
    NotForwarded,
    /// Delivered to this host.
    Delivered(HostId),
    /// Dropped by an explicit deny rule.
    Denied,
    /// A downstream switch had no rule — transient black hole.
    BlackHole(SwitchId),
    /// The walk revisited a switch — transient loop.
    Loop(SwitchId),
}

/// A replayed data-plane state.
#[derive(Clone, Debug, Default)]
pub struct ReplayState {
    rules: BTreeMap<(SwitchId, FlowMatch), FlowAction>,
}

impl ReplayState {
    /// Empty state.
    pub fn new() -> Self {
        ReplayState::default()
    }

    /// Applies one update.
    pub fn apply(&mut self, switch: SwitchId, kind: UpdateKind) {
        match kind {
            UpdateKind::Install(rule) => {
                self.rules.insert((switch, rule.matcher), rule.action);
            }
            UpdateKind::Remove(m) => {
                self.rules.remove(&(switch, m));
            }
        }
    }

    /// The rule for `m` at `switch`, if any.
    pub fn rule(&self, switch: SwitchId, m: FlowMatch) -> Option<FlowAction> {
        self.rules.get(&(switch, m)).copied()
    }

    /// Walks flow `m` starting at `ingress`.
    pub fn walk(&self, ingress: SwitchId, m: FlowMatch) -> WalkOutcome {
        let mut visited = BTreeSet::new();
        let mut cur = ingress;
        loop {
            if !visited.insert(cur) {
                return WalkOutcome::Loop(cur);
            }
            match self.rule(cur, m) {
                None => {
                    return if cur == ingress {
                        WalkOutcome::NotForwarded
                    } else {
                        WalkOutcome::BlackHole(cur)
                    };
                }
                Some(FlowAction::Deny) => return WalkOutcome::Denied,
                Some(FlowAction::Forward(NextHop::Host(h))) => {
                    return WalkOutcome::Delivered(h)
                }
                Some(FlowAction::Forward(NextHop::Switch(s))) => cur = s,
            }
        }
    }
}

/// A transient hazard found during replay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Hazard {
    /// The replay step (index into the applied-update sequence) after which
    /// the hazard state was live.
    pub step: usize,
    /// The offending walk outcome.
    pub outcome: WalkOutcome,
}

/// Replays every applied update from an observation stream and audits the
/// intermediate states for the flow `m` entering at `ingress`.
///
/// `denied` marks flows the firewall policy forbids: delivering one is a
/// policy-violation hazard, denying/buffering it is fine.
pub fn audit_flow(
    observations: &[Observation<Obs>],
    ingress: SwitchId,
    m: FlowMatch,
    denied: bool,
) -> Vec<Hazard> {
    let mut state = ReplayState::new();
    let mut hazards = Vec::new();
    for (step, obs) in observations.iter().enumerate() {
        let Obs::UpdateApplied { switch, kind, .. } = obs.value else {
            continue;
        };
        state.apply(switch, kind);
        match state.walk(ingress, m) {
            WalkOutcome::NotForwarded => {}
            WalkOutcome::Denied => {
                if !denied {
                    // An allowed flow transiently denied is not a safety
                    // hazard (it is buffered, not lost); ignore.
                }
            }
            WalkOutcome::Delivered(h) => {
                if denied {
                    hazards.push(Hazard {
                        step,
                        outcome: WalkOutcome::Delivered(h),
                    });
                } else if h != m.dst {
                    hazards.push(Hazard {
                        step,
                        outcome: WalkOutcome::Delivered(h),
                    });
                }
            }
            out @ (WalkOutcome::BlackHole(_) | WalkOutcome::Loop(_)) => {
                hazards.push(Hazard { step, outcome: out });
            }
        }
    }
    hazards
}

#[cfg(test)]
mod tests {
    use super::*;
    use southbound::types::FlowRule;

    fn m() -> FlowMatch {
        FlowMatch {
            src: HostId(1),
            dst: HostId(2),
        }
    }

    fn fwd(next: NextHop) -> UpdateKind {
        UpdateKind::Install(FlowRule {
            matcher: m(),
            action: FlowAction::Forward(next),
        })
    }

    #[test]
    fn walk_detects_black_hole_and_recovery() {
        let mut state = ReplayState::new();
        // Ingress rule first (the hazard-prone order).
        state.apply(SwitchId(1), fwd(NextHop::Switch(SwitchId(2))));
        assert_eq!(state.walk(SwitchId(1), m()), WalkOutcome::BlackHole(SwitchId(2)));
        state.apply(SwitchId(2), fwd(NextHop::Host(HostId(2))));
        assert_eq!(state.walk(SwitchId(1), m()), WalkOutcome::Delivered(HostId(2)));
    }

    #[test]
    fn walk_detects_loop() {
        let mut state = ReplayState::new();
        state.apply(SwitchId(1), fwd(NextHop::Switch(SwitchId(2))));
        state.apply(SwitchId(2), fwd(NextHop::Switch(SwitchId(1))));
        assert_eq!(state.walk(SwitchId(1), m()), WalkOutcome::Loop(SwitchId(1)));
    }

    #[test]
    fn walk_respects_deny() {
        let mut state = ReplayState::new();
        state.apply(
            SwitchId(1),
            UpdateKind::Install(FlowRule {
                matcher: m(),
                action: FlowAction::Deny,
            }),
        );
        assert_eq!(state.walk(SwitchId(1), m()), WalkOutcome::Denied);
    }

    #[test]
    fn not_forwarded_when_no_ingress_rule() {
        let state = ReplayState::new();
        assert_eq!(state.walk(SwitchId(1), m()), WalkOutcome::NotForwarded);
    }

    #[test]
    fn removal_reopens_black_hole() {
        let mut state = ReplayState::new();
        state.apply(SwitchId(1), fwd(NextHop::Switch(SwitchId(2))));
        state.apply(SwitchId(2), fwd(NextHop::Host(HostId(2))));
        state.apply(SwitchId(2), UpdateKind::Remove(m()));
        assert_eq!(state.walk(SwitchId(1), m()), WalkOutcome::BlackHole(SwitchId(2)));
    }
}
