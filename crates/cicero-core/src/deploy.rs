//! Deployment planning shared by every executor: node-id assignment, the
//! directory, the key ceremony, and actor construction.
//!
//! Both the discrete-event engine ([`crate::engine::Engine`]) and the
//! threaded runtime (`cicero-node`) consume a [`Deployment`]; the plan is a
//! pure function of `(cfg, topo, domain_map, standby_controllers)`, so the
//! two executors stand up byte-identical protocol state and differ only in
//! how they schedule it.

use crate::config::{EngineConfig, Mode};
use crate::ctrl::ControllerActor;
use crate::msg::PhaseInfo;
use crate::runtime::{bootstrap_keys, Directory, Shared};
use crate::switch::{initial_phase_info, SwitchActor};
use blscrypto::bls::KeyShare;
use controller::membership::ControlPlaneView;
use controller::policy::{DomainMap, GlobalDomainPolicy};
use blscrypto::bls::SecretKey;
use netmodel::topology::Topology;
use simnet::node::NodeId;
use southbound::types::{ControllerId, DomainId, SwitchId};
use std::collections::BTreeMap;
use std::sync::Arc;
use substrate::storage::DiskHandle;

/// One planned node: its id plus the constructed protocol actor.
pub struct PlannedNode {
    /// The node id the executor must assign to this actor.
    pub node: NodeId,
    /// Which actor lives at this node.
    pub role: NodeRole,
}

/// The actor occupying a planned node.
pub enum NodeRole {
    /// A domain controller (member or standby).
    Controller {
        /// Domain the controller belongs to.
        domain: DomainId,
        /// Controller id within the domain.
        id: ControllerId,
        /// The constructed actor.
        actor: Box<ControllerActor>,
    },
    /// A switch.
    Switch {
        /// Switch id.
        id: SwitchId,
        /// The constructed actor.
        actor: Box<SwitchActor>,
    },
}

/// Everything needed to reconstruct one controller actor after a crash
/// (clones of the key material taken before the originals moved into the
/// first-life actor).
#[derive(Clone)]
pub struct ControllerSeed {
    /// Per-controller signing identity (real-crypto modes).
    pub identity: Option<SecretKey>,
    /// Threshold signature share (Cicero modes).
    pub share: Option<KeyShare>,
    /// The initial membership view.
    pub view: ControlPlaneView,
    /// Member (`true`) or standby (`false`) at plan time.
    pub active: bool,
}

/// Everything needed to reconstruct one switch actor after a restart
/// (clones of the identity material taken before the originals moved into
/// the first-life actor). Data-plane recovery is WAL-driven, so the seed
/// only carries what [`SwitchActor::new`] consumes.
#[derive(Clone)]
pub struct SwitchSeed {
    /// Domain the switch belongs to.
    pub domain: DomainId,
    /// Per-switch signing identity (real-crypto modes).
    pub key: Option<SecretKey>,
    /// Plan-time control-plane phase info.
    pub phase: PhaseInfo,
}

/// A fully planned deployment: shared runtime context plus every actor in
/// node-id order, ready for an executor to schedule.
pub struct Deployment {
    /// Shared immutable runtime context (config, topology, directory, keys).
    pub shared: Arc<Shared>,
    /// `(dc, pod)` location per node id, for latency models.
    pub locations: Vec<(u16, u16)>,
    /// All actors, sorted by node id (controllers first, then switches).
    pub nodes: Vec<PlannedNode>,
    /// The bootstrap controller's node in each domain (membership commands
    /// are injected here).
    pub bootstrap_nodes: BTreeMap<DomainId, NodeId>,
    /// Rebuild seeds per controller (crash recovery).
    pub seeds: BTreeMap<(DomainId, ControllerId), ControllerSeed>,
    /// Durable disks per controller node, once provisioned.
    pub disks: BTreeMap<NodeId, DiskHandle>,
    /// Rebuild seeds per switch (restart recovery).
    pub switch_seeds: BTreeMap<SwitchId, SwitchSeed>,
    /// Durable disks per switch node, once provisioned.
    pub switch_disks: BTreeMap<NodeId, DiskHandle>,
}

/// The retained slice of a [`Deployment`] an executor needs to rebuild a
/// crashed controller: seeds, disks, and the shared context. Cheap to
/// clone out of the deployment before its actors are consumed.
#[derive(Clone)]
pub struct RecoveryKit {
    shared: Arc<Shared>,
    seeds: BTreeMap<(DomainId, ControllerId), ControllerSeed>,
    disks: BTreeMap<NodeId, DiskHandle>,
    switch_seeds: BTreeMap<SwitchId, SwitchSeed>,
    switch_disks: BTreeMap<NodeId, DiskHandle>,
    customize: Option<Arc<dyn Fn(&mut ControllerActor) + Send + Sync>>,
}

impl RecoveryKit {
    /// Registers a customization re-applied to every actor this kit
    /// rebuilds, before its WAL replay runs. A deployment whose
    /// controllers were mutated after planning — a non-default update
    /// scheduler, extra firewall entries — must register the same
    /// mutation here, or a restarted controller would rejoin with
    /// plan-time defaults and silently diverge from its peers (e.g.
    /// re-deriving a forwarding schedule for a flow the others denied).
    pub fn on_rebuild(&mut self, f: impl Fn(&mut ControllerActor) + Send + Sync + 'static) {
        self.customize = Some(Arc::new(f));
    }
    /// Rebuilds controller `(d, c)` from its seed and durable disk, in the
    /// recovering state (WAL replay on start, then peer state sync). With
    /// `disk_lost`, the disk is wiped first — modeling a replacement
    /// machine that recovers from peers alone.
    ///
    /// # Panics
    ///
    /// Panics if `(d, c)` was not planned or storage was never provisioned.
    pub fn rebuild(
        &self,
        d: DomainId,
        c: ControllerId,
        disk_lost: bool,
    ) -> (NodeId, ControllerActor) {
        let seed = self.seeds.get(&(d, c)).expect("planned controller");
        let node = self.shared.dir.controller(d, c);
        let disk = self
            .disks
            .get(&node)
            .expect("controller storage provisioned")
            .clone();
        if disk_lost {
            disk.lock().wipe();
        }
        let mut actor = ControllerActor::new(
            Arc::clone(&self.shared),
            d,
            c,
            seed.identity.clone(),
            seed.share.clone(),
            seed.view.clone(),
            seed.active,
        );
        if let Some(f) = &self.customize {
            f(&mut actor);
        }
        actor.attach_disk(disk, true);
        (node, actor)
    }

    /// Rebuilds switch `s` from its seed and durable disk, in the
    /// recovering state: WAL replay restores the flow table and the
    /// Segway release/receipt journal, so the new life never re-releases
    /// a neighbor its previous life already released. The disk survives
    /// the restart — a switch that loses its disk is a replacement
    /// machine, which the protocol treats as a fresh (empty-table)
    /// switch instead.
    ///
    /// # Panics
    ///
    /// Panics if `s` was not planned or switch storage was never
    /// provisioned.
    pub fn rebuild_switch(&self, s: SwitchId) -> (NodeId, SwitchActor) {
        let seed = self.switch_seeds.get(&s).expect("planned switch");
        let node = self.shared.dir.switch(s);
        let disk = self
            .switch_disks
            .get(&node)
            .expect("switch storage provisioned")
            .clone();
        let mut actor = SwitchActor::new(
            Arc::clone(&self.shared),
            s,
            seed.domain,
            seed.key.clone(),
            seed.phase,
        );
        actor.attach_disk(disk, true);
        (node, actor)
    }
}

impl Deployment {
    /// Provisions per-controller durable storage: creates a disk via
    /// `factory` for every controller, attaches it to the actor (fresh
    /// boot: empty WAL), and records it for crash-recovery rebuilds.
    pub fn provision_storage<F: FnMut(DomainId, ControllerId) -> DiskHandle>(
        &mut self,
        mut factory: F,
    ) {
        for n in &mut self.nodes {
            if let NodeRole::Controller { domain, id, actor } = &mut n.role {
                let disk = factory(*domain, *id);
                actor.attach_disk(disk.clone(), false);
                self.disks.insert(n.node, disk);
            }
        }
    }

    /// Provisions per-switch durable storage: creates a disk via `factory`
    /// for every switch, attaches it to the actor (fresh boot: empty WAL),
    /// and records it for restart rebuilds.
    pub fn provision_switch_storage<F: FnMut(SwitchId) -> DiskHandle>(&mut self, mut factory: F) {
        for n in &mut self.nodes {
            if let NodeRole::Switch { id, actor } = &mut n.role {
                let disk = factory(*id);
                actor.attach_disk(disk.clone(), false);
                self.switch_disks.insert(n.node, disk);
            }
        }
    }

    /// The rebuild context an executor retains for crash recovery.
    pub fn recovery_kit(&self) -> RecoveryKit {
        RecoveryKit {
            shared: Arc::clone(&self.shared),
            seeds: self.seeds.clone(),
            disks: self.disks.clone(),
            switch_seeds: self.switch_seeds.clone(),
            switch_disks: self.switch_disks.clone(),
            customize: None,
        }
    }
}

/// Plans a deployment: assigns node ids (controllers domain-asc/id-asc with
/// standbys after members, then switches id-asc), runs the key ceremony and
/// constructs every actor.
///
/// `standby_controllers` extra controller actors per domain are created
/// inactive, ready to be admitted by membership commands.
///
/// # Panics
///
/// Panics on structurally impossible configurations (e.g. Cicero with fewer
/// than 4 controllers per domain).
pub fn plan(
    cfg: EngineConfig,
    topo: Topology,
    domain_map: DomainMap,
    standby_controllers: u32,
) -> Deployment {
    let domain_map = if cfg.mode == Mode::Centralized {
        DomainMap::single(&topo)
    } else {
        domain_map
    };
    let controllers_per_domain = match cfg.mode {
        Mode::Centralized => 1,
        _ => cfg.controllers_per_domain,
    };
    if cfg.mode.is_signed() {
        assert!(
            controllers_per_domain >= 4,
            "threshold-signed modes (Cicero, Segway) require at least 4 \
             controllers per domain (paper §3.2)"
        );
    }
    let topo = Arc::new(topo);
    let domains: Vec<DomainId> = domain_map.domains();

    // ---- plan node ids deterministically -----------------------------
    let mut next_node = 0u32;
    let mut dir = Directory::default();
    let mut members_per_domain: BTreeMap<DomainId, Vec<ControllerId>> = BTreeMap::new();
    for &d in &domains {
        let members: Vec<ControllerId> =
            (1..=controllers_per_domain).map(ControllerId).collect();
        for &c in &members {
            dir.controller_node.insert((d, c), NodeId(next_node));
            next_node += 1;
        }
        for extra in 0..standby_controllers {
            let c = ControllerId(controllers_per_domain + 1 + extra);
            dir.controller_node.insert((d, c), NodeId(next_node));
            next_node += 1;
        }
        members_per_domain.insert(d, members.clone());
        dir.initial_members.insert(d, members);
    }
    for s in topo.switches() {
        dir.switch_node.insert(s.id, NodeId(next_node));
        next_node += 1;
        let d = domain_map
            .domain_of(s.id)
            .expect("every switch is assigned a domain");
        dir.domain_of_switch.insert(s.id, d);
    }

    // ---- key ceremony ------------------------------------------------
    let switch_ids: Vec<SwitchId> = topo.switches().iter().map(|s| s.id).collect();
    let (keys, mut secrets) =
        bootstrap_keys(cfg.crypto, &switch_ids, &members_per_domain, cfg.seed);

    // ---- locations (controllers sit with their domain) ---------------
    let mut locations: Vec<(u16, u16)> = vec![(0, 0); next_node as usize];
    for (&(d, _), &node) in &dir.controller_node {
        let first_switch = domain_map.switches_of(d).first().copied();
        let l = first_switch
            .and_then(|s| topo.switch(s))
            .map(|s| (s.loc.dc, s.loc.pod))
            .unwrap_or((0, 0));
        locations[node.0 as usize] = l;
    }
    for s in topo.switches() {
        let node = dir.switch_node[&s.id];
        locations[node.0 as usize] = (s.loc.dc, s.loc.pod);
    }

    let policy = Arc::new(GlobalDomainPolicy::new(domain_map));
    let shared = Arc::new(Shared {
        cfg: cfg.clone(),
        topo: Arc::clone(&topo),
        policy,
        dir,
        keys,
    });

    // ---- construct actors in node-id order ---------------------------
    let mut nodes = Vec::with_capacity(next_node as usize);
    let mut bootstrap_nodes = BTreeMap::new();
    let mut seeds: BTreeMap<(DomainId, ControllerId), ControllerSeed> = BTreeMap::new();
    for &d in &domains {
        let n_members = members_per_domain[&d].len() as u32;
        let view = ControlPlaneView::initial(n_members);
        for &c in &members_per_domain[&d] {
            let identity = secrets.controller_sk.remove(&(d, c));
            let share: Option<KeyShare> = secrets
                .domain_dkg
                .get(&d)
                .map(|dkg| dkg.participants[(c.0 - 1) as usize].share.clone());
            seeds.insert(
                (d, c),
                ControllerSeed {
                    identity: identity.clone(),
                    share: share.clone(),
                    view: view.clone(),
                    active: true,
                },
            );
            let actor = ControllerActor::new(
                Arc::clone(&shared),
                d,
                c,
                identity,
                share,
                view.clone(),
                true,
            );
            let node = shared.dir.controller(d, c);
            if c == view.bootstrap() {
                bootstrap_nodes.insert(d, node);
            }
            nodes.push(PlannedNode {
                node,
                role: NodeRole::Controller {
                    domain: d,
                    id: c,
                    actor: Box::new(actor),
                },
            });
        }
        for extra in 0..standby_controllers {
            let c = ControllerId(n_members + 1 + extra);
            seeds.insert(
                (d, c),
                ControllerSeed {
                    identity: None,
                    share: None,
                    view: view.clone(),
                    active: false,
                },
            );
            let actor = ControllerActor::new(
                Arc::clone(&shared),
                d,
                c,
                None,
                None,
                view.clone(),
                false,
            );
            nodes.push(PlannedNode {
                node: shared.dir.controller(d, c),
                role: NodeRole::Controller {
                    domain: d,
                    id: c,
                    actor: Box::new(actor),
                },
            });
        }
    }
    let mut switch_seeds: BTreeMap<SwitchId, SwitchSeed> = BTreeMap::new();
    for s in topo.switches() {
        let d = shared.dir.domain_of_switch[&s.id];
        let n_members = members_per_domain[&d].len() as u32;
        let view = ControlPlaneView::initial(n_members);
        let key = secrets.switch_sk.remove(&s.id);
        let phase = initial_phase_info(&view);
        switch_seeds.insert(
            s.id,
            SwitchSeed {
                domain: d,
                key: key.clone(),
                phase,
            },
        );
        let actor = SwitchActor::new(Arc::clone(&shared), s.id, d, key, phase);
        nodes.push(PlannedNode {
            node: shared.dir.switch(s.id),
            role: NodeRole::Switch {
                id: s.id,
                actor: Box::new(actor),
            },
        });
    }
    nodes.sort_by_key(|n| n.node.0);

    Deployment {
        shared,
        locations,
        nodes,
        bootstrap_nodes,
        seeds,
        disks: BTreeMap::new(),
        switch_seeds,
        switch_disks: BTreeMap::new(),
    }
}
