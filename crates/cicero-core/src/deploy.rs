//! Deployment planning shared by every executor: node-id assignment, the
//! directory, the key ceremony, and actor construction.
//!
//! Both the discrete-event engine ([`crate::engine::Engine`]) and the
//! threaded runtime (`cicero-node`) consume a [`Deployment`]; the plan is a
//! pure function of `(cfg, topo, domain_map, standby_controllers)`, so the
//! two executors stand up byte-identical protocol state and differ only in
//! how they schedule it.

use crate::config::{EngineConfig, Mode};
use crate::ctrl::ControllerActor;
use crate::runtime::{bootstrap_keys, Directory, Shared};
use crate::switch::{initial_phase_info, SwitchActor};
use blscrypto::bls::KeyShare;
use controller::membership::ControlPlaneView;
use controller::policy::{DomainMap, GlobalDomainPolicy};
use netmodel::topology::Topology;
use simnet::node::NodeId;
use southbound::types::{ControllerId, DomainId, SwitchId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One planned node: its id plus the constructed protocol actor.
pub struct PlannedNode {
    /// The node id the executor must assign to this actor.
    pub node: NodeId,
    /// Which actor lives at this node.
    pub role: NodeRole,
}

/// The actor occupying a planned node.
pub enum NodeRole {
    /// A domain controller (member or standby).
    Controller {
        /// Domain the controller belongs to.
        domain: DomainId,
        /// Controller id within the domain.
        id: ControllerId,
        /// The constructed actor.
        actor: Box<ControllerActor>,
    },
    /// A switch.
    Switch {
        /// Switch id.
        id: SwitchId,
        /// The constructed actor.
        actor: Box<SwitchActor>,
    },
}

/// A fully planned deployment: shared runtime context plus every actor in
/// node-id order, ready for an executor to schedule.
pub struct Deployment {
    /// Shared immutable runtime context (config, topology, directory, keys).
    pub shared: Arc<Shared>,
    /// `(dc, pod)` location per node id, for latency models.
    pub locations: Vec<(u16, u16)>,
    /// All actors, sorted by node id (controllers first, then switches).
    pub nodes: Vec<PlannedNode>,
    /// The bootstrap controller's node in each domain (membership commands
    /// are injected here).
    pub bootstrap_nodes: BTreeMap<DomainId, NodeId>,
}

/// Plans a deployment: assigns node ids (controllers domain-asc/id-asc with
/// standbys after members, then switches id-asc), runs the key ceremony and
/// constructs every actor.
///
/// `standby_controllers` extra controller actors per domain are created
/// inactive, ready to be admitted by membership commands.
///
/// # Panics
///
/// Panics on structurally impossible configurations (e.g. Cicero with fewer
/// than 4 controllers per domain).
pub fn plan(
    cfg: EngineConfig,
    topo: Topology,
    domain_map: DomainMap,
    standby_controllers: u32,
) -> Deployment {
    let domain_map = if cfg.mode == Mode::Centralized {
        DomainMap::single(&topo)
    } else {
        domain_map
    };
    let controllers_per_domain = match cfg.mode {
        Mode::Centralized => 1,
        _ => cfg.controllers_per_domain,
    };
    if cfg.mode.is_cicero() {
        assert!(
            controllers_per_domain >= 4,
            "Cicero requires at least 4 controllers per domain (paper §3.2)"
        );
    }
    let topo = Arc::new(topo);
    let domains: Vec<DomainId> = domain_map.domains();

    // ---- plan node ids deterministically -----------------------------
    let mut next_node = 0u32;
    let mut dir = Directory::default();
    let mut members_per_domain: BTreeMap<DomainId, Vec<ControllerId>> = BTreeMap::new();
    for &d in &domains {
        let members: Vec<ControllerId> =
            (1..=controllers_per_domain).map(ControllerId).collect();
        for &c in &members {
            dir.controller_node.insert((d, c), NodeId(next_node));
            next_node += 1;
        }
        for extra in 0..standby_controllers {
            let c = ControllerId(controllers_per_domain + 1 + extra);
            dir.controller_node.insert((d, c), NodeId(next_node));
            next_node += 1;
        }
        members_per_domain.insert(d, members.clone());
        dir.initial_members.insert(d, members);
    }
    for s in topo.switches() {
        dir.switch_node.insert(s.id, NodeId(next_node));
        next_node += 1;
        let d = domain_map
            .domain_of(s.id)
            .expect("every switch is assigned a domain");
        dir.domain_of_switch.insert(s.id, d);
    }

    // ---- key ceremony ------------------------------------------------
    let switch_ids: Vec<SwitchId> = topo.switches().iter().map(|s| s.id).collect();
    let (keys, mut secrets) =
        bootstrap_keys(cfg.crypto, &switch_ids, &members_per_domain, cfg.seed);

    // ---- locations (controllers sit with their domain) ---------------
    let mut locations: Vec<(u16, u16)> = vec![(0, 0); next_node as usize];
    for (&(d, _), &node) in &dir.controller_node {
        let first_switch = domain_map.switches_of(d).first().copied();
        let l = first_switch
            .and_then(|s| topo.switch(s))
            .map(|s| (s.loc.dc, s.loc.pod))
            .unwrap_or((0, 0));
        locations[node.0 as usize] = l;
    }
    for s in topo.switches() {
        let node = dir.switch_node[&s.id];
        locations[node.0 as usize] = (s.loc.dc, s.loc.pod);
    }

    let policy = Arc::new(GlobalDomainPolicy::new(domain_map));
    let shared = Arc::new(Shared {
        cfg: cfg.clone(),
        topo: Arc::clone(&topo),
        policy,
        dir,
        keys,
    });

    // ---- construct actors in node-id order ---------------------------
    let mut nodes = Vec::with_capacity(next_node as usize);
    let mut bootstrap_nodes = BTreeMap::new();
    for &d in &domains {
        let n_members = members_per_domain[&d].len() as u32;
        let view = ControlPlaneView::initial(n_members);
        for &c in &members_per_domain[&d] {
            let identity = secrets.controller_sk.remove(&(d, c));
            let share: Option<KeyShare> = secrets
                .domain_dkg
                .get(&d)
                .map(|dkg| dkg.participants[(c.0 - 1) as usize].share.clone());
            let actor = ControllerActor::new(
                Arc::clone(&shared),
                d,
                c,
                identity,
                share,
                view.clone(),
                true,
            );
            let node = shared.dir.controller(d, c);
            if c == view.bootstrap() {
                bootstrap_nodes.insert(d, node);
            }
            nodes.push(PlannedNode {
                node,
                role: NodeRole::Controller {
                    domain: d,
                    id: c,
                    actor: Box::new(actor),
                },
            });
        }
        for extra in 0..standby_controllers {
            let c = ControllerId(n_members + 1 + extra);
            let actor = ControllerActor::new(
                Arc::clone(&shared),
                d,
                c,
                None,
                None,
                view.clone(),
                false,
            );
            nodes.push(PlannedNode {
                node: shared.dir.controller(d, c),
                role: NodeRole::Controller {
                    domain: d,
                    id: c,
                    actor: Box::new(actor),
                },
            });
        }
    }
    for s in topo.switches() {
        let d = shared.dir.domain_of_switch[&s.id];
        let n_members = members_per_domain[&d].len() as u32;
        let view = ControlPlaneView::initial(n_members);
        let key = secrets.switch_sk.remove(&s.id);
        let actor = SwitchActor::new(
            Arc::clone(&shared),
            s.id,
            d,
            key,
            initial_phase_info(&view),
        );
        nodes.push(PlannedNode {
            node: shared.dir.switch(s.id),
            role: NodeRole::Switch {
                id: s.id,
                actor: Box::new(actor),
            },
        });
    }
    nodes.sort_by_key(|n| n.node.0);

    Deployment {
        shared,
        locations,
        nodes,
        bootstrap_nodes,
    }
}
