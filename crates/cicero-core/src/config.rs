//! Engine configuration: protocol modes, crypto execution modes, and the
//! calibrated cost model.

use simnet::time::SimDuration;

/// Which update protocol runs on the control plane — the four systems the
//  paper's evaluation compares (§6.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// One controller, no replication, no authentication (baseline 1).
    Centralized,
    /// Replicated control plane ordering events through atomic broadcast,
    /// but switches apply the first update received with **no quorum
    /// authentication** (baseline 2).
    CrashTolerant,
    /// The full Cicero protocol with threshold-signed updates.
    Cicero {
        /// Who collects and aggregates signature shares.
        aggregation: Aggregation,
    },
    /// Decentralized execution after one controller round (ez-Segway,
    /// Nguyen et al.): controllers threshold-sign each update *together
    /// with* its dependency metadata and push everything at once; switches
    /// then release their neighbors' next segment directly with signed
    /// switch-to-switch ready messages. Lower latency than `Cicero`
    /// (no controller round-trip per dependency edge) at the price of more
    /// data-plane messages and a wider trust surface: a switch can now
    /// stall a schedule by withholding a ready, though it still cannot
    /// forge one (readies are switch-signed and target-bound) or alter
    /// the threshold-signed order.
    Segway,
}

impl Mode {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Centralized => "Centralized",
            Mode::CrashTolerant => "Crash Tolerant",
            Mode::Cicero {
                aggregation: Aggregation::Switch,
            } => "Cicero",
            Mode::Cicero {
                aggregation: Aggregation::Controller,
            } => "Cicero Agg",
            Mode::Segway => "Segway",
        }
    }

    /// `true` for either Cicero variant.
    pub fn is_cicero(&self) -> bool {
        matches!(self, Mode::Cicero { .. })
    }

    /// `true` for the modes whose updates are threshold-signed and whose
    /// switch traffic (events, acks, NACKs) is signature-checked: Cicero
    /// and Segway. The unauthenticated baselines return `false`.
    pub fn is_signed(&self) -> bool {
        matches!(self, Mode::Cicero { .. } | Mode::Segway)
    }
}

/// Signature-share aggregation placement (paper §3.3 / §4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Aggregation {
    /// Each switch collects shares and aggregates (more switch CPU).
    Switch,
    /// The aggregator controller collects, aggregates and relays (less
    /// switch CPU, more latency).
    Controller,
}

/// Whether cryptographic operations actually execute.
///
/// *Simulated time is charged identically in both modes* (from
/// [`CostModel`]); `Real` additionally runs the BLS math so tests exercise
/// genuine signatures end-to-end, while `Modeled` keeps large benchmark runs
/// fast. The protocol logic (quorum counting, identical-update matching,
/// dedup, acks) is the same code path in both.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CryptoMode {
    /// Execute real BLS threshold signatures.
    Real,
    /// Skip the curve math, charge the modeled time.
    Modeled,
}

/// The calibrated per-operation cost model (simulated CPU time).
///
/// Defaults are chosen so the four modes land near the paper's measured
/// anchors on its 2.2 GHz Xeon testbed (flow setup ≈ 2.9 / 4.3 / 8.3 /
/// 11.6 ms; see DESIGN.md "timing calibration" and EXPERIMENTS.md for the
/// comparison against this crate's own Criterion measurements).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Switch: handling any control-plane message (parse, table access).
    pub switch_msg: SimDuration,
    /// Switch: signing an event (G1 scalar multiplication).
    pub event_sign: SimDuration,
    /// Switch/controller: verifying a plain BLS signature (2 pairings).
    pub bls_verify: SimDuration,
    /// Aggregating one signature share (Lagrange-weighted G1 mul).
    pub aggregate_per_share: SimDuration,
    /// Amortized per-item cost of *batched* signature verification: one
    /// randomized pairing-product check covers a whole batch
    /// ([`blscrypto::batch`]), so the per-item share is far below
    /// [`CostModel::bls_verify`]. Charged by the aggregator when it
    /// validates a quorum of partials before aggregating.
    pub batch_verify_per_item: SimDuration,
    /// Controller: signing an update with a key share.
    pub update_sign: SimDuration,
    /// Controller: application + scheduler work per event — the *serialized*
    /// share only. The paper's controllers are 12-core machines while a
    /// simulated node is single-core, so per-event latency is split between
    /// this CPU charge and the latency-only [`CostModel::event_pipeline`].
    pub event_process: SimDuration,
    /// Controller: latency-only event pipeline (parallelizable route
    /// computation + southbound serialization; adds delay, not CPU).
    pub event_pipeline: SimDuration,
    /// Controller: handling one consensus message (CPU).
    pub consensus_msg: SimDuration,
    /// Consensus transport overhead per message (batching/serialization —
    /// latency-only; BFT-SMaRt's per-round cost beyond raw link latency).
    pub consensus_wire: SimDuration,
    /// Controller: handling an ack / bookkeeping message.
    pub ctrl_msg: SimDuration,
    /// Aggregator: receiving and bookkeeping one signature share (CPU).
    pub aggregator_msg: SimDuration,
    /// Aggregator: latency-only collection delay per aggregated update —
    /// "switches must wait for the aggregator to collect and aggregate
    /// responses" (paper §3.3).
    pub aggregator_delay: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            switch_msg: SimDuration::from_micros(250),
            event_sign: SimDuration::from_micros(200),
            bls_verify: SimDuration::from_micros(450),
            aggregate_per_share: SimDuration::from_micros(150),
            batch_verify_per_item: SimDuration::from_micros(150),
            update_sign: SimDuration::from_micros(250),
            event_process: SimDuration::from_micros(700),
            event_pipeline: SimDuration::from_micros(1200),
            consensus_msg: SimDuration::from_micros(50),
            consensus_wire: SimDuration::from_micros(400),
            ctrl_msg: SimDuration::from_micros(100),
            aggregator_msg: SimDuration::from_micros(150),
            aggregator_delay: SimDuration::from_micros(1200),
        }
    }
}

impl CostModel {
    /// The cost model with every *cryptographic* term replaced by this
    /// host's measured bench medians (`BENCH_protocol.json`, crypto suite) —
    /// the fast pairing/wNAF/batch implementations, not the paper's PBC
    /// numbers. Non-crypto terms (message handling, pipelines, consensus
    /// wire) keep the paper-calibrated defaults: they model the testbed,
    /// not this host.
    ///
    /// Used by the Fig. 11d variant that reports per-switch CPU under
    /// measured costs (`experiment::fig11d_switch_cpu_measured`). Refresh
    /// alongside the baseline: `event_sign`/`update_sign` ≈ `bls_sign` /
    /// `threshold_sign_share`, `bls_verify` is the two-pairing verify,
    /// `aggregate_per_share` is `threshold_aggregate_q2 / 2`, and
    /// `batch_verify_per_item` is `batch_verify_64 / 64`.
    #[must_use]
    pub fn measured() -> Self {
        CostModel {
            event_sign: SimDuration::from_micros(380),
            bls_verify: SimDuration::from_micros(1870),
            aggregate_per_share: SimDuration::from_micros(143),
            batch_verify_per_item: SimDuration::from_micros(980),
            update_sign: SimDuration::from_micros(380),
            ..CostModel::default()
        }
    }
}

/// Reliable-delivery knobs: retransmission backoff, retry budgets, NACK
/// (state re-sync) timing. See DESIGN.md "Reliable delivery under loss".
///
/// The paper's southbound channel is TCP, so loss recovery is implicit
/// there; the reproduction's simulated network loses raw messages, and
/// this layer makes the update path *explicitly* loss-tolerant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Master switch: when `false`, nothing is retransmitted and no NACKs
    /// are sent (the pre-reliability behavior, kept for control runs that
    /// demonstrate what the layer buys).
    pub enabled: bool,
    /// Delay before the first retransmission of an unacked update.
    pub retry_base: SimDuration,
    /// Backoff ceiling for updates, events and NACKs.
    pub retry_max_backoff: SimDuration,
    /// Retransmissions allowed per update before it is reported failed.
    pub retry_budget: u32,
    /// Delay before a switch re-sends an unanswered signed event.
    pub event_retry_base: SimDuration,
    /// Event retransmissions allowed before the switch gives up.
    pub event_retry_budget: u32,
    /// How long a switch lets a below-quorum update bucket age before
    /// NACKing the control plane for the missing shares.
    pub nack_timeout: SimDuration,
    /// NACKs allowed per update bucket.
    pub nack_budget: u32,
}

impl Default for ReliabilityConfig {
    /// The bases sit well above the *loaded* service time of each path
    /// (flow-completion p99 under a burst is a few hundred ms), not its
    /// idle latency: a retry timer below the queueing delay retransmits
    /// messages that were never lost, and on a busy control plane that
    /// self-amplifies — duplicates add load, load adds delay, delay fires
    /// more timers. Loss recovery still only costs one base interval.
    fn default() -> Self {
        ReliabilityConfig {
            enabled: true,
            retry_base: SimDuration::from_millis(150),
            retry_max_backoff: SimDuration::from_secs(2),
            retry_budget: 16,
            event_retry_base: SimDuration::from_millis(250),
            event_retry_budget: 16,
            nack_timeout: SimDuration::from_millis(150),
            nack_budget: 8,
        }
    }
}

impl ReliabilityConfig {
    /// The no-retransmission control configuration.
    pub fn disabled() -> Self {
        ReliabilityConfig {
            enabled: false,
            ..ReliabilityConfig::default()
        }
    }
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Protocol mode.
    pub mode: Mode,
    /// Controllers per domain (ignored for `Centralized`, which always runs
    /// exactly one controller for the whole network).
    pub controllers_per_domain: u32,
    /// Crypto execution mode.
    pub crypto: CryptoMode,
    /// The cost model.
    pub costs: CostModel,
    /// Host NIC bandwidth in bits/s (transmission-time model).
    pub host_bandwidth_bps: u64,
    /// When `false`, every flow tears its rules down on completion
    /// (the paper's "unamortized" setup/teardown mode, Fig. 11c).
    pub rule_reuse: bool,
    /// RNG seed (simulation determinism).
    pub seed: u64,
    /// CPU-utilization bucket width for switch meters (Fig. 11d).
    pub cpu_bucket: SimDuration,
    /// When `true`, every controller emits an observation for every event
    /// it delivers, letting tests check *event-linearizability* (paper
    /// §4.4): all controllers of a domain process the identical sequence.
    /// Off by default (chatty).
    pub trace_deliveries: bool,
    /// Heartbeat period for the failure detector; `None` disables automatic
    /// failure detection (benchmarks run without it, as crashes are not part
    /// of any figure). When enabled, a controller silent for 4 periods is
    /// proposed for removal (paper §4.3/§5.1).
    pub heartbeat: Option<SimDuration>,
    /// Cross-domain ordering handshake: when an event's schedule makes an
    /// update depend on updates in *another* domain, the upstream domain
    /// holds it until the downstream domain's quorum reports its whole
    /// segment applied (`SegmentApplied`/`BoundaryRelease`, DESIGN.md §3).
    /// `false` restores the historical per-domain-only ordering, under
    /// which boundary-crossing flows can transiently black-hole at the
    /// domain edge with zero faults (kept for regression/control runs).
    pub cross_domain_handshake: bool,
    /// Reliable-delivery layer (retransmission, NACK/re-sync) knobs.
    pub reliability: ReliabilityConfig,
    /// PBFT progress timeout in consensus ticks before a view change
    /// (BFT-SMaRt's request timeout analogue); lossy soaks raise it so
    /// benign loss does not masquerade as a faulty primary.
    pub view_timeout_ticks: u32,
    /// Liveness-watchdog sampling period for [`crate::engine::Engine::run_reporting`]:
    /// how often progress is checked against the outstanding-work snapshot.
    pub watchdog_slice: SimDuration,
    /// Consecutive progress-free watchdog slices before the run is declared
    /// stalled. The quiet window (`slices * slice`) must exceed the longest
    /// retransmission interval (`retry_max_backoff` plus 25% jitter),
    /// otherwise a healthy backoff pause reads as a stall.
    pub watchdog_stall_slices: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: Mode::Cicero {
                aggregation: Aggregation::Switch,
            },
            controllers_per_domain: 4,
            crypto: CryptoMode::Modeled,
            costs: CostModel::default(),
            host_bandwidth_bps: 100_000_000,
            rule_reuse: true,
            seed: 1,
            cpu_bucket: SimDuration::from_secs(1),
            trace_deliveries: false,
            heartbeat: None,
            cross_domain_handshake: true,
            reliability: ReliabilityConfig::default(),
            view_timeout_ticks: 8,
            watchdog_slice: SimDuration::from_millis(250),
            watchdog_stall_slices: 12,
        }
    }
}

impl EngineConfig {
    /// Convenience: a config for `mode` with defaults otherwise.
    pub fn for_mode(mode: Mode) -> Self {
        let mut c = EngineConfig::default();
        if mode == Mode::Centralized {
            c.controllers_per_domain = 1;
        }
        c.mode = mode;
        c
    }

    /// Transmission time of `bytes` at the configured host bandwidth.
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.saturating_mul(8).saturating_mul(1_000_000_000) / self.host_bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Mode::Centralized.label(), "Centralized");
        assert_eq!(Mode::CrashTolerant.label(), "Crash Tolerant");
        assert_eq!(
            Mode::Cicero {
                aggregation: Aggregation::Switch
            }
            .label(),
            "Cicero"
        );
        assert_eq!(
            Mode::Cicero {
                aggregation: Aggregation::Controller
            }
            .label(),
            "Cicero Agg"
        );
        assert_eq!(Mode::Segway.label(), "Segway");
    }

    #[test]
    fn signed_modes_cover_cicero_and_segway() {
        assert!(Mode::Segway.is_signed());
        assert!(!Mode::Segway.is_cicero());
        assert!(Mode::Cicero {
            aggregation: Aggregation::Switch
        }
        .is_signed());
        assert!(!Mode::Centralized.is_signed());
        assert!(!Mode::CrashTolerant.is_signed());
    }

    #[test]
    fn tx_time_model() {
        let c = EngineConfig::default();
        // 420 kB at 100 Mb/s = 33.6 ms (the paper's Hadoop mean).
        assert_eq!(c.tx_time(420_000).as_millis_f64(), 33.6);
        assert_eq!(c.tx_time(0), SimDuration::ZERO);
    }

    #[test]
    fn centralized_forces_one_controller() {
        let c = EngineConfig::for_mode(Mode::Centralized);
        assert_eq!(c.controllers_per_domain, 1);
    }
}
