//! Shared runtime context handed to every protocol actor: node directory,
//! public key material, topology, policies and configuration.

use crate::config::{CryptoMode, EngineConfig};
use blscrypto::bls::{PublicKey, SecretKey, Signature};
use blscrypto::curves::G1Affine;
use blscrypto::dkg::{DkgConfig, DkgOutput, GroupPublic};
use blscrypto::feldman::Commitment;
use blscrypto::curves::G2Projective;
use controller::policy::GlobalDomainPolicy;
use netmodel::topology::Topology;
use substrate::rng::StdRng;
use substrate::rng::SeedableRng;
use simnet::node::NodeId;
use southbound::types::{ControllerId, DomainId, SwitchId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Signing-envelope labels (domain separation).
pub mod labels {
    /// Switch-originated events.
    pub const EVENT: &str = "CICERO_EVENT_V1";
    /// Controller-forwarded cross-domain events.
    pub const FORWARD: &str = "CICERO_FORWARD_V1";
    /// Network updates (threshold-signed).
    pub const UPDATE: &str = "CICERO_UPDATE_V1";
    /// Switch acknowledgements.
    pub const ACK: &str = "CICERO_ACK_V1";
    /// Switch negative acknowledgements (state re-sync requests).
    pub const NACK: &str = "CICERO_NACK_V1";
    /// Phase notices.
    pub const PHASE: &str = "CICERO_PHASE_V1";
    /// Cross-domain segment-applied reports.
    pub const SEGMENT: &str = "CICERO_SEGMENT_V1";
    /// Cross-domain boundary-release receipts.
    pub const RELEASE: &str = "CICERO_RELEASE_V1";
    /// Segway updates (threshold-signed update + gate/notify metadata).
    pub const SEGWAY: &str = "CICERO_SEGWAY_UPDATE_V1";
    /// Segway switch-to-switch ready messages (switch identity keys).
    pub const READY: &str = "CICERO_SEGWAY_READY_V1";
    /// Segway ready receipts (stop the sender's retransmission).
    pub const READY_RECEIPT: &str = "CICERO_SEGWAY_RECEIPT_V1";
}

/// Who lives where in the simulation.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    /// Switch → simulation node.
    pub switch_node: BTreeMap<SwitchId, NodeId>,
    /// (domain, controller) → simulation node (includes standbys).
    pub controller_node: BTreeMap<(DomainId, ControllerId), NodeId>,
    /// Switch → its domain.
    pub domain_of_switch: BTreeMap<SwitchId, DomainId>,
    /// Initial (active) members per domain, ascending.
    pub initial_members: BTreeMap<DomainId, Vec<ControllerId>>,
}

impl Directory {
    /// The node of a controller.
    ///
    /// # Panics
    ///
    /// Panics for unknown controllers (directory is complete by
    /// construction), naming the domain and controller id it was asked for.
    pub fn controller(&self, domain: DomainId, id: ControllerId) -> NodeId {
        match self.controller_node.get(&(domain, id)) {
            Some(&node) => node,
            None => panic!(
                "directory has no controller {id:?} in domain {domain:?} \
                 ({} controllers known)",
                self.controller_node.len()
            ),
        }
    }

    /// The node of a switch.
    pub fn switch(&self, id: SwitchId) -> NodeId {
        self.switch_node[&id]
    }

    /// Nodes of the given controllers in a domain.
    pub fn controller_nodes<'a>(
        &'a self,
        domain: DomainId,
        ids: impl IntoIterator<Item = ControllerId> + 'a,
    ) -> impl Iterator<Item = NodeId> + 'a {
        ids.into_iter().map(move |c| self.controller(domain, c))
    }

    /// All switch nodes of a domain, ascending by switch id.
    pub fn domain_switch_nodes(&self, domain: DomainId) -> Vec<NodeId> {
        self.domain_of_switch
            .iter()
            .filter(|(_, &d)| d == domain)
            .map(|(s, _)| self.switch_node[s])
            .collect()
    }
}

/// Public key material of one domain's control plane.
#[derive(Clone, Debug)]
pub struct DomainKeys {
    /// The DKG public output (commitment → member share public keys).
    pub group: GroupPublic,
    /// The group public key installed on switches.
    pub public_key: PublicKey,
}

/// All public key material (secrets live inside their actors).
#[derive(Clone, Debug)]
pub struct KeyMaterial {
    /// Event-source (switch) identity public keys.
    pub switch_pk: BTreeMap<SwitchId, PublicKey>,
    /// Controller identity public keys (for forwarded events, state sync).
    pub controller_pk: BTreeMap<(DomainId, ControllerId), PublicKey>,
    /// Per-domain threshold material.
    pub domains: BTreeMap<DomainId, DomainKeys>,
    /// Placeholder signature used in [`CryptoMode::Modeled`] envelopes.
    pub dummy: Signature,
}

impl KeyMaterial {
    /// A placeholder (identity-point) signature.
    pub fn dummy_signature() -> Signature {
        Signature(G1Affine::identity())
    }
}

/// Builds a fake `GroupPublic` (identity commitments) for
/// [`CryptoMode::Modeled`] runs where the curve math is skipped but the
/// protocol structure (quorums, member indices) must still exist.
pub fn fake_group(n: u32, t: u32) -> GroupPublic {
    GroupPublic {
        commitment: Commitment::from_points(vec![
            G2Projective::identity();
            t as usize + 1
        ]),
        qualified: (1..=n).collect(),
        config: DkgConfig::new(n, t).expect("valid parameters"),
    }
}

/// The immutable context shared by all actors of one engine run.
pub struct Shared {
    /// Engine configuration.
    pub cfg: EngineConfig,
    /// The network topology.
    pub topo: Arc<Topology>,
    /// Domain partition + global domain policy.
    pub policy: Arc<GlobalDomainPolicy>,
    /// Node directory.
    pub dir: Directory,
    /// Public key material.
    pub keys: KeyMaterial,
}

impl Shared {
    /// `true` when real curve math should execute.
    pub fn real_crypto(&self) -> bool {
        self.cfg.crypto == CryptoMode::Real
    }
}

/// Generates the per-actor secret material for a run.
pub struct SecretStore {
    /// Switch identity secret keys (moved into switch actors at build).
    pub switch_sk: BTreeMap<SwitchId, SecretKey>,
    /// Controller identity secret keys.
    pub controller_sk: BTreeMap<(DomainId, ControllerId), SecretKey>,
    /// Per-domain DKG outputs (shares moved into controller actors).
    pub domain_dkg: BTreeMap<DomainId, DkgOutput>,
}

/// Runs the bootstrap key ceremony.
///
/// In `Real` mode this performs actual key generation and a DKG per domain
/// (what the paper's deployment does once at bootstrap); in `Modeled` mode
/// identity placeholders are produced so that large benchmark runs skip the
/// curve math entirely.
pub fn bootstrap_keys(
    crypto: CryptoMode,
    switches: &[SwitchId],
    domains: &BTreeMap<DomainId, Vec<ControllerId>>,
    seed: u64,
) -> (KeyMaterial, SecretStore) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc1ce_0cee);
    let mut material = KeyMaterial {
        switch_pk: BTreeMap::new(),
        controller_pk: BTreeMap::new(),
        domains: BTreeMap::new(),
        dummy: KeyMaterial::dummy_signature(),
    };
    let mut secrets = SecretStore {
        switch_sk: BTreeMap::new(),
        controller_sk: BTreeMap::new(),
        domain_dkg: BTreeMap::new(),
    };
    let real = crypto == CryptoMode::Real;
    for &s in switches {
        if real {
            let sk = SecretKey::generate(&mut rng);
            material.switch_pk.insert(s, sk.public_key());
            secrets.switch_sk.insert(s, sk);
        } else {
            material
                .switch_pk
                .insert(s, PublicKey(blscrypto::curves::G2Affine::identity()));
        }
    }
    for (&d, members) in domains {
        for &c in members {
            if real {
                let sk = SecretKey::generate(&mut rng);
                material.controller_pk.insert((d, c), sk.public_key());
                secrets.controller_sk.insert((d, c), sk);
            } else {
                material
                    .controller_pk
                    .insert((d, c), PublicKey(blscrypto::curves::G2Affine::identity()));
            }
        }
        let n = members.len() as u32;
        let t = (n.saturating_sub(1)) / 3;
        if real && n >= 1 {
            let dkg = blscrypto::dkg::run_trusted_dealer_free(n, t.max(0), &mut rng)
                .expect("bootstrap DKG");
            material.domains.insert(
                d,
                DomainKeys {
                    public_key: dkg.group_public_key,
                    group: dkg.group.clone(),
                },
            );
            secrets.domain_dkg.insert(d, dkg);
        } else {
            let group = fake_group(n.max(1), t);
            material.domains.insert(
                d,
                DomainKeys {
                    public_key: group.public_key(),
                    group,
                },
            );
        }
    }
    (material, secrets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "no controller ControllerId(7) in domain DomainId(3)")]
    fn directory_controller_panic_names_the_lookup() {
        let mut dir = Directory::default();
        dir.controller_node
            .insert((DomainId(0), ControllerId(1)), NodeId(0));
        dir.controller(DomainId(3), ControllerId(7));
    }

    #[test]
    fn modeled_bootstrap_is_cheap_and_complete() {
        let switches: Vec<SwitchId> = (0..10).map(SwitchId).collect();
        let mut domains = BTreeMap::new();
        domains.insert(DomainId(0), (1..=4).map(ControllerId).collect::<Vec<_>>());
        domains.insert(DomainId(1), (1..=4).map(ControllerId).collect::<Vec<_>>());
        let (mat, sec) = bootstrap_keys(CryptoMode::Modeled, &switches, &domains, 7);
        assert_eq!(mat.switch_pk.len(), 10);
        assert_eq!(mat.domains.len(), 2);
        assert!(sec.switch_sk.is_empty());
        assert_eq!(mat.domains[&DomainId(0)].group.config.quorum(), 2);
    }

    #[test]
    fn real_bootstrap_produces_working_threshold_keys() {
        let switches: Vec<SwitchId> = (0..2).map(SwitchId).collect();
        let mut domains = BTreeMap::new();
        domains.insert(DomainId(0), (1..=4).map(ControllerId).collect::<Vec<_>>());
        let (mat, sec) = bootstrap_keys(CryptoMode::Real, &switches, &domains, 7);
        let dkg = &sec.domain_dkg[&DomainId(0)];
        let msg = b"bootstrap check";
        let partials: Vec<_> = dkg.participants[..2]
            .iter()
            .map(|p| blscrypto::bls::sign_share(&p.share, msg))
            .collect();
        let sig = blscrypto::bls::aggregate(&partials).unwrap();
        assert!(blscrypto::bls::verify(
            &mat.domains[&DomainId(0)].public_key,
            msg,
            &sig
        ));
    }
}
