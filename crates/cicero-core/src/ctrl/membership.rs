//! Membership changes (paper §4.3): phase changes with public-key-preserving
//! share redistribution, cross-domain membership notices, state sync for
//! joiners, and the post-reshare phase notice to the domain's switches.

use super::{ControllerActor, TICK, TICK_PERIOD};
use crate::msg::{Net, OrderedOp, PhaseInfo};
use crate::obs::Obs;
use crate::runtime::{fake_group, labels};
use blscrypto::bls::PartialSignature;
use blscrypto::dkg::{DkgConfig, GroupPublic};
use blscrypto::reshare::{deal_reshare_to, finalize_reshare};
use controller::membership::ControlPlaneView;
use simnet::node::Host;
use southbound::envelope::{QuorumSigned, ShareSigned};
use southbound::types::{ControllerId, DomainId, Event, EventId, EventKind, Phase};

/// State tracked while a membership change (and its reshare) is in flight.
pub(super) struct PendingReshare {
    phase: Phase,
    need: usize,
    old_group: GroupPublic,
    new_cfg: DkgConfig,
}

impl ControllerActor {
    pub(super) fn start_phase_change(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        added: bool,
        subject: ControllerId,
    ) {
        let old_view = self.view.clone();
        let result = if added {
            self.view.add(old_view.bootstrap(), subject)
        } else {
            self.view.remove(subject)
        };
        if result.is_err() {
            self.view = old_view;
            return;
        }
        self.in_phase_change = true;
        if added {
            self.detector.track(subject, ctx.now());
        } else {
            self.detector.forget(subject);
        }

        // Cross-domain notification (paper §4.3 final step): the bootstrap
        // forwards a MembershipChanged event to every other domain.
        if self.id == self.view.bootstrap() {
            let event = Event {
                id: EventId(((self.id.0 as u64) << 48) | self.view.phase().0),
                kind: EventKind::MembershipChanged {
                    domain: self.domain,
                    controller: subject,
                    added,
                },
                origin: self.domain,
                forwarded: true,
            };
            let domains: Vec<DomainId> = self
                .remote_members
                .keys()
                .copied()
                .filter(|d| *d != self.domain)
                .collect();
            for d in domains {
                if let Some(target) = self.remote_members[&d].first().copied() {
                    let signed = self.sign_forward(ctx, event);
                    ctx.send(self.shared.dir.controller(d, target), Net::ForwardedEvent(signed));
                }
            }
            // State sync for a joiner.
            if added {
                ctx.send(
                    self.shared.dir.controller(self.domain, subject),
                    Net::StateSync {
                        view: self.view.clone(),
                    },
                );
            }
        }

        if !added && subject == self.id {
            // We were removed: stop participating.
            self.active = false;
            self.replica = None;
            self.in_phase_change = false;
            return;
        }

        let new_members: Vec<u32> = self.view.members().map(|c| c.0).collect();
        let new_cfg = DkgConfig::new(self.view.len() as u32, self.view.threshold_t())
            .expect("valid view parameters");

        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let old_t = old_view.threshold_t() as usize;
            self.pending_reshare = Some(PendingReshare {
                phase: self.view.phase(),
                need: old_t + 1,
                old_group: self.group.clone(),
                new_cfg,
            });
            // Dealers: the lowest old_t + 1 surviving old members.
            let dealers: Vec<ControllerId> = old_view
                .members()
                .filter(|&c| added || c != subject)
                .take(old_t + 1)
                .collect();
            if dealers.contains(&self.id) {
                let share = self.share.clone().expect("members hold shares");
                let dealing = deal_reshare_to(&share, new_cfg.t, &new_members, ctx.rng());
                let phase = self.view.phase();
                for &m in self.members().iter() {
                    if m == self.id {
                        self.reshare_buf.entry(phase).or_default().push(dealing.clone());
                    } else {
                        ctx.send(
                            self.node_of(m),
                            Net::Reshare {
                                phase,
                                dealing: dealing.clone(),
                            },
                        );
                    }
                }
            }
            self.try_finalize_reshare(ctx);
        } else {
            // Modeled crypto: the reshare's *timing* is not part of any
            // figure; jump straight to the new phase with placeholder keys.
            self.group = fake_group(self.view.len() as u32, self.view.threshold_t());
            self.finish_phase_change(ctx);
        }
    }

    pub(super) fn try_finalize_reshare(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        let Some(pr) = self.pending_reshare.as_ref() else {
            return;
        };
        let Some(dealings) = self.reshare_buf.get(&pr.phase) else {
            return;
        };
        if dealings.len() < pr.need {
            return;
        }
        let dealings = dealings.clone();
        let pr = self.pending_reshare.take().expect("checked above");
        match finalize_reshare(&dealings[..pr.need], &pr.old_group, pr.new_cfg, self.id.0) {
            Ok((share, group)) => {
                self.share = Some(share);
                self.group = group;
                self.finish_phase_change(ctx);
            }
            Err(_) => {
                // A bad dealing slipped in; wait for more dealers.
                self.pending_reshare = Some(pr);
            }
        }
    }

    pub(super) fn finish_phase_change(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        self.in_phase_change = false;
        self.active = true;
        self.replica = Some(Self::build_replica(
            &self.view,
            self.id,
            self.shared.cfg.view_timeout_ticks,
        ));
        self.agg_buckets.clear();
        ctx.observe(Obs::PhaseChanged {
            domain: self.domain,
            phase: self.view.phase().0,
        });

        // Inform switches of the new phase/quorum/aggregator under the
        // (unchanged) group public key.
        let info = PhaseInfo {
            phase: self.view.phase(),
            quorum: self.view.quorum() as u32,
            aggregator: self.view.aggregator(),
        };
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let share = self.share.clone().expect("post-reshare share");
            let msg_id = self.msg_id();
            let partial = ShareSigned::sign(labels::PHASE, info, info.phase, msg_id, &share);
            let agg = self.view.aggregator();
            if agg == self.id {
                self.on_phase_partial(ctx, partial);
            } else {
                ctx.send(self.node_of(agg), Net::PhasePartial(partial));
            }
        } else if self.is_lowest() {
            let msg_id = self.msg_id();
            let notice = QuorumSigned {
                payload: info,
                phase: info.phase,
                msg_id,
                signature: self.shared.keys.dummy,
            };
            for node in self.shared.dir.domain_switch_nodes(self.domain) {
                ctx.send(node, Net::PhaseNotice(notice.clone()));
            }
        }

        // Drain work accumulated during the change.
        let queued: Vec<Event> = self.queued_events.drain(..).collect();
        for e in queued {
            self.submit_op(ctx, OrderedOp::Event(e));
        }
        let unprocessed: Vec<OrderedOp> = self.unprocessed.values().cloned().collect();
        self.unprocessed.clear();
        for op in unprocessed {
            self.submit_op(ctx, op);
        }
    }

    pub(super) fn on_phase_partial(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: ShareSigned<PhaseInfo>,
    ) {
        if !self.is_lowest() {
            return;
        }
        let phase = msg.phase;
        let store = self.phase_partials.entry(phase).or_default();
        store.insert(msg.partial.index, msg.partial);
        let quorum = self.view.quorum();
        if store.len() < quorum || phase != self.view.phase() {
            return;
        }
        let partials: Vec<PartialSignature> = store.values().copied().collect();
        let info = PhaseInfo {
            phase: self.view.phase(),
            quorum: self.view.quorum() as u32,
            aggregator: self.view.aggregator(),
        };
        let msg_id = self.msg_id();
        let Ok(notice) =
            QuorumSigned::aggregate(info, phase, msg_id, &partials[..quorum], quorum - 1)
        else {
            return;
        };
        for node in self.shared.dir.domain_switch_nodes(self.domain) {
            ctx.send(node, Net::PhaseNotice(notice.clone()));
        }
    }

    /// A standby joiner adopts the synced view and waits for dealings.
    pub(super) fn on_state_sync(&mut self, ctx: &mut dyn Host<Net, Obs>, view: ControlPlaneView) {
        if self.active {
            return;
        }
        self.view = view;
        self.in_phase_change = true;
        let new_cfg = DkgConfig::new(self.view.len() as u32, self.view.threshold_t())
            .expect("valid view");
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            // old view = new view minus ourselves.
            let old_n = self.view.len() as u32 - 1;
            let old_t = (old_n.saturating_sub(1)) / 3;
            self.pending_reshare = Some(PendingReshare {
                phase: self.view.phase(),
                need: old_t as usize + 1,
                old_group: self.group.clone(),
                new_cfg,
            });
            self.try_finalize_reshare(ctx);
        } else {
            self.group = fake_group(self.view.len() as u32, self.view.threshold_t());
            self.finish_phase_change(ctx);
        }
        if self.uses_consensus() {
            ctx.set_timer(TICK_PERIOD, TICK);
        }
    }
}
