//! The optional aggregator role (paper §4.2, controller aggregation):
//! collects share-signed updates from the domain's replicas, aggregates a
//! quorum into one threshold signature, and relays it to the switch.

use super::ControllerActor;
use crate::msg::Net;
use crate::obs::Obs;
use crate::runtime::labels;
use blscrypto::batch::{batch_verify, BatchItem};
use blscrypto::bls::{self, PartialSignature, Signature};
use simnet::node::Host;
use southbound::envelope::{signing_digest, QuorumSigned, ShareSigned};
use southbound::types::{NetworkUpdate, Phase};
use std::collections::BTreeMap;

/// An aggregation bucket at the aggregator controller.
#[derive(Clone, Debug)]
pub(super) struct AggBucket {
    update: NetworkUpdate,
    phase: Phase,
    partials: BTreeMap<u32, PartialSignature>,
    /// The relayed quorum signature, kept so a share retransmission after
    /// the relay can trigger a re-send (the switch evidently lost it).
    relayed: Option<QuorumSigned<NetworkUpdate>>,
}

impl ControllerActor {
    pub(super) fn on_update_to_aggregator(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: ShareSigned<NetworkUpdate>,
    ) {
        if !self.is_lowest() || !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.aggregator_msg);
        if msg.phase != self.view.phase() {
            return;
        }
        let key = (msg.payload.id, msg.phase);
        let quorum = self.view.quorum();
        let buckets = self.agg_buckets.entry(key).or_default();
        let bucket = match buckets.iter_mut().find(|b| b.update == msg.payload) {
            Some(b) => b,
            None => {
                buckets.push(AggBucket {
                    update: msg.payload,
                    phase: msg.phase,
                    partials: BTreeMap::new(),
                    relayed: None,
                });
                buckets.last_mut().expect("just pushed")
            }
        };
        let fresh = bucket.partials.insert(msg.partial.index, msg.partial).is_none();
        if let Some(out) = &bucket.relayed {
            // Already relayed: a *retransmitted* share means the sending
            // controller has not seen an ack, so the switch probably lost
            // the aggregated update — relay it again.
            if !fresh {
                ctx.send_delayed(
                    self.shared.dir.switch(bucket.update.switch),
                    Net::UpdateAggregated(out.clone()),
                    self.shared.cfg.costs.aggregator_delay,
                );
            }
            return;
        }
        if bucket.partials.len() < quorum {
            return;
        }
        let partials: Vec<PartialSignature> = bucket.partials.values().copied().collect();
        let update = bucket.update;
        let phase = bucket.phase;
        let msg_id = self.msg_id();
        // Validate the quorum *before* aggregating: one randomized
        // pairing-product check over all shares ([`blscrypto::batch`])
        // instead of a full `bls_verify` per share. A poisoned batch falls
        // back to per-share verification to evict the culprits, then waits
        // for honest replacements — without this, one Byzantine share would
        // make the relayed aggregate fail at the switch forever.
        ctx.charge_cpu(
            self.shared
                .cfg
                .costs
                .batch_verify_per_item
                .saturating_mul(partials.len() as u64),
        );
        if self.shared.real_crypto() {
            let digest = signing_digest(labels::UPDATE, phase, &update);
            let items: Vec<BatchItem<'_>> = partials
                .iter()
                .map(|p| {
                    BatchItem::new(
                        self.group.member_public_key(p.index),
                        &digest,
                        Signature(p.sig),
                    )
                })
                .collect();
            if !batch_verify(&items, ctx.rng()) {
                for p in &partials {
                    ctx.charge_cpu(self.shared.cfg.costs.bls_verify);
                    let mpk = self.group.member_public_key(p.index);
                    if !bls::verify_partial(&mpk, &digest, p) {
                        if let Some(b) = self
                            .agg_buckets
                            .get_mut(&key)
                            .and_then(|bs| bs.iter_mut().find(|b| b.update == update))
                        {
                            b.partials.remove(&p.index);
                        }
                    }
                }
                return;
            }
        }
        let out = if self.shared.real_crypto() {
            match QuorumSigned::aggregate(update, phase, msg_id, &partials, quorum - 1) {
                Ok(q) => q,
                Err(_) => return,
            }
        } else {
            QuorumSigned {
                payload: update,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        };
        if let Some(b) = self
            .agg_buckets
            .get_mut(&key)
            .and_then(|bs| bs.iter_mut().find(|b| b.update == update))
        {
            b.relayed = Some(out.clone());
        }
        ctx.send_delayed(
            self.shared.dir.switch(update.switch),
            Net::UpdateAggregated(out),
            self.shared.cfg.costs.aggregator_delay,
        );
    }
}
