//! The controller side of the reliable-delivery layer: one self-re-arming
//! retry timer drives update retransmission (with per-controller jittered
//! backoff), handshake sweeps, and NACK-answering state re-sync.

use super::{ControllerActor, RETRY};
use crate::msg::{NackBody, Net};
use crate::obs::Obs;
use crate::runtime::labels;
use simnet::node::Host;
use simnet::time::SimDuration;
use southbound::envelope::Signed;
use southbound::types::SwitchId;

impl ControllerActor {
    /// Arms the retry timer for the earliest in-flight deadline. One timer
    /// is outstanding at a time; it re-arms itself from `on_timer`.
    pub(super) fn arm_retry(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        if self.retry_armed || !self.shared.cfg.reliability.enabled {
            return;
        }
        let due = match (self.pending.next_due(), self.handshake_next_due()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let Some(due) = due else {
            return;
        };
        ctx.set_timer(due.since(ctx.now()), RETRY);
        self.retry_armed = true;
    }

    pub(super) fn on_retry_timer(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        self.retry_armed = false;
        if !self.active {
            return;
        }
        let batch = self.pending.due_retries(ctx.now());
        let mut stuck_events = Vec::new();
        for (u, attempt) in batch.resend {
            ctx.observe(Obs::UpdateRetransmitted {
                domain: self.domain,
                controller: self.id.0,
                update: u.id,
                attempt,
            });
            if self.shared.cfg.mode == crate::config::Mode::Segway
                && !stuck_events.contains(&u.id.event)
            {
                stuck_events.push(u.id.event);
            }
            self.send_update_delayed(ctx, u, SimDuration::ZERO);
        }
        // Segway: a stuck update may mean the remote half of its gate chain
        // never heard the event — re-forward alongside the retry wave.
        for e in stuck_events {
            self.reforward_segway(ctx, e);
        }
        for id in batch.failed {
            ctx.observe(Obs::UpdateRetryExhausted {
                domain: self.domain,
                controller: self.id.0,
                update: id,
            });
        }
        self.sweep_handshake(ctx);
        self.arm_retry(ctx);
    }

    /// Handles a switch NACK: re-send the signed update if we still hold it
    /// (in flight, or acknowledged-by-quorum but missed by this switch).
    pub(super) fn on_update_nack(&mut self, ctx: &mut dyn Host<Net, Obs>, m: Signed<NackBody>) {
        if !self.active || !self.shared.cfg.reliability.enabled {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        if self.shared.cfg.mode.is_signed() && self.shared.real_crypto() {
            let pk = self.shared.keys.switch_pk.get(&SwitchId(m.msg_id.origin));
            let valid = pk.map(|pk| m.verify(labels::NACK, pk)).unwrap_or(false);
            if !valid {
                return;
            }
        }
        let body: NackBody = m.payload;
        if body.switch != SwitchId(m.msg_id.origin) {
            return;
        }
        if let Some(u) = self.pending.resync(body.update, ctx.now()) {
            ctx.observe(Obs::ResyncReplied {
                domain: self.domain,
                controller: self.id.0,
                update: u.id,
            });
            self.send_update_delayed(ctx, u, SimDuration::ZERO);
            self.arm_retry(ctx);
        }
    }
}
