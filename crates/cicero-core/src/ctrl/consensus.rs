//! Driving the per-domain PBFT replica: submitting operations, routing the
//! replica's outputs onto the wire, and acting on delivered (totally
//! ordered) operations.

use super::ControllerActor;
use crate::msg::{Net, OrderedOp};
use crate::obs::Obs;
use bft::message::BftPayload;
use bft::replica::Output;
use simnet::node::Host;

impl ControllerActor {
    pub(super) fn route_outputs(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        outs: Vec<Output<OrderedOp>>,
    ) {
        // Write-ahead discipline: the votes the replica just cast are
        // persisted before the messages carrying them go on the wire.
        self.persist_journal();
        let members = self.members();
        let phase = self.view.phase();
        for out in outs {
            match out {
                Output::Send(rid, msg) => {
                    let Some(&target) = members.get(rid.0 as usize) else {
                        continue;
                    };
                    if target == self.id {
                        continue;
                    }
                    ctx.send_delayed(
                        self.node_of(target),
                        Net::Consensus {
                            phase,
                            from: self.id,
                            msg: Box::new(msg),
                        },
                        self.shared.cfg.costs.consensus_wire,
                    );
                }
                Output::Broadcast(msg) => {
                    for &m in &members {
                        if m == self.id {
                            continue;
                        }
                        ctx.send_delayed(
                            self.node_of(m),
                            Net::Consensus {
                                phase,
                                from: self.id,
                                msg: Box::new(msg.clone()),
                            },
                            self.shared.cfg.costs.consensus_wire,
                        );
                    }
                }
                Output::Deliver(seq, op) => {
                    self.record_delivery(seq, &op);
                    self.on_deliver(ctx, op);
                }
            }
        }
    }

    pub(super) fn submit_op(&mut self, ctx: &mut dyn Host<Net, Obs>, op: OrderedOp) {
        if let OrderedOp::Event(e) = &op {
            if self.seen_events.contains(&e.id) {
                return;
            }
        }
        if !self.uses_consensus() {
            // No consensus sequence exists; number deliveries locally so
            // the WAL replays in the same order.
            let seq = self.delivered_ops.len() as u64 + 1;
            self.record_delivery(seq, &op);
            self.on_deliver(ctx, op);
            return;
        }
        self.unprocessed.insert(op.digest(), op.clone());
        let Some(replica) = self.replica.as_mut() else {
            return;
        };
        let outs = replica.submit(op);
        self.route_outputs(ctx, outs);
    }

    pub(super) fn on_deliver(&mut self, ctx: &mut dyn Host<Net, Obs>, op: OrderedOp) {
        self.unprocessed.remove(&op.digest());
        match op {
            OrderedOp::Event(event) => self.process_event(ctx, event),
            OrderedOp::AddController(c) => self.start_phase_change(ctx, true, c),
            OrderedOp::RemoveController(c) => self.start_phase_change(ctx, false, c),
        }
    }
}
