//! Event processing: delivering totally-ordered events into the network
//! application, projecting and releasing this domain's updates, forwarding
//! events to other affected domains, and dispatching signed updates.

use super::ControllerActor;
use crate::config::{Aggregation, Mode};
use crate::msg::Net;
use crate::obs::Obs;
use crate::runtime::labels;
use blscrypto::bls::PartialSignature;
use controller::app::NetworkApp;
use simnet::node::Host;
use simnet::time::SimDuration;
use southbound::envelope::{ShareSigned, Signed};
use southbound::types::{ControllerId, Event, EventKind, NetworkUpdate, SwitchId};

impl ControllerActor {
    pub(super) fn process_event(&mut self, ctx: &mut dyn Host<Net, Obs>, event: Event) {
        if !self.seen_events.insert(event.id) {
            return;
        }
        if self.shared.cfg.trace_deliveries {
            ctx.observe(Obs::EventDelivered {
                domain: self.domain,
                controller: self.id.0,
                event: event.id,
            });
        }
        if self.is_lowest() {
            ctx.observe(Obs::EventProcessed {
                domain: self.domain,
                event: event.id,
            });
        }
        // Cross-domain bookkeeping events.
        if let EventKind::MembershipChanged {
            domain,
            controller,
            added,
        } = event.kind
        {
            let members = self.remote_members.entry(domain).or_default();
            if added {
                if !members.contains(&controller) {
                    members.push(controller);
                    members.sort();
                }
            } else {
                members.retain(|&c| c != controller);
            }
            return;
        }
        // Forward to other affected domains (paper §4.1). Normally already
        // done at event receipt (so the domains' consensus rounds overlap);
        // this is the fallback for events that reached consensus without
        // passing through this controller's inbox — e.g. after the
        // forwarding aggregator crashed before forwarding.
        if !event.forwarded && self.is_lowest() {
            self.forward_event(ctx, &event);
        }
        // Compute, schedule and release this domain's updates. The schedule
        // is computed over the *full* update list so dependencies that cross
        // domain boundaries survive the projection onto this domain; foreign
        // dependencies become barrier ids released by the cross-domain
        // handshake (DESIGN.md §3).
        let all = self.app.handle_event(&event, &self.shared.topo);
        let own: Vec<NetworkUpdate> = all
            .iter()
            .filter(|u| {
                self.shared.dir.domain_of_switch.get(&u.switch) == Some(&self.domain)
            })
            .copied()
            .collect();
        if own.is_empty() {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.event_process);
        let schedule = if !self.shared.cfg.cross_domain_handshake || own.len() == all.len()
        {
            self.scheduler.schedule(&own)
        } else {
            self.cross_domain_schedule(ctx, &event, &all)
        };
        let ready = self.pending.admit(schedule, ctx.now());
        let mut pipeline = self.shared.cfg.costs.event_pipeline;
        if self.shared.cfg.mode.is_cicero() {
            pipeline += self.shared.cfg.costs.bls_verify;
        }
        for u in ready {
            self.send_update_delayed(ctx, u, pipeline);
        }
        self.arm_retry(ctx);
    }

    /// Forwards `event` to the first member of every other affected domain,
    /// at most once per event (the lowest live controller forwards, to
    /// avoid n copies).
    pub(super) fn forward_event(&mut self, ctx: &mut dyn Host<Net, Obs>, event: &Event) {
        if !self.forwarded_events.insert(event.id) {
            return;
        }
        let affected = self
            .shared
            .policy
            .affected_domains(event, &self.shared.topo);
        for d in affected {
            if d == self.domain {
                continue;
            }
            let Some(target) = self
                .remote_members
                .get(&d)
                .and_then(|ms| ms.first().copied())
            else {
                continue;
            };
            let fwd = Event {
                forwarded: true,
                ..*event
            };
            let signed = self.sign_forward(ctx, fwd);
            ctx.send(
                self.shared.dir.controller(d, target),
                Net::ForwardedEvent(signed),
            );
        }
    }

    pub(super) fn sign_forward(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        event: Event,
    ) -> Signed<Event> {
        let phase = self.view.phase();
        let msg_id = self.msg_id();
        if self.shared.cfg.mode.is_cicero() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        }
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let key = self.identity.as_ref().expect("real mode identity");
            Signed::sign(labels::FORWARD, event, phase, msg_id, key)
        } else {
            Signed {
                payload: event,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        }
    }

    pub(super) fn send_update_delayed(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        update: NetworkUpdate,
        extra: SimDuration,
    ) {
        let switch_node = self.shared.dir.switch(update.switch);
        match self.shared.cfg.mode {
            Mode::Centralized | Mode::CrashTolerant => {
                ctx.send_delayed(
                    switch_node,
                    Net::UpdatePlain {
                        update,
                        from: self.id,
                    },
                    extra,
                );
            }
            Mode::Cicero { aggregation } => {
                let sign = self.shared.cfg.costs.update_sign;
                ctx.charge_cpu(SimDuration::from_nanos(sign.as_nanos() / 3));
                let extra = extra + sign;
                let phase = self.view.phase();
                let msg_id = self.msg_id();
                let msg = if self.shared.real_crypto() {
                    let share = self.share.as_ref().expect("real mode share");
                    ShareSigned::sign(labels::UPDATE, update, phase, msg_id, share)
                } else {
                    ShareSigned {
                        payload: update,
                        phase,
                        msg_id,
                        partial: PartialSignature {
                            index: self.id.0,
                            sig: self.shared.keys.dummy.0,
                        },
                    }
                };
                match aggregation {
                    Aggregation::Switch => {
                        ctx.send_delayed(switch_node, Net::UpdateMsg(msg), extra)
                    }
                    Aggregation::Controller => {
                        let agg = self.view.aggregator();
                        ctx.send_delayed(
                            self.node_of(agg),
                            Net::UpdateToAggregator(msg),
                            extra,
                        );
                    }
                }
            }
        }
    }

    // ----- inbound verification ------------------------------------------

    fn verify_event(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: &Signed<Event>,
        forwarded: bool,
    ) -> bool {
        if !self.shared.cfg.mode.is_cicero() {
            return true;
        }
        // Verification cost is latency, not serialized CPU, on the paper's
        // 12-core controllers: it is folded into the event pipeline delay.
        let _ = &ctx;
        if !self.shared.real_crypto() {
            return true;
        }
        if forwarded {
            let sender = (msg.payload.origin, ControllerId(msg.msg_id.origin));
            match self.shared.keys.controller_pk.get(&sender) {
                Some(pk) => msg.verify(labels::FORWARD, pk),
                None => false,
            }
        } else {
            match self.shared.keys.switch_pk.get(&SwitchId(msg.msg_id.origin)) {
                Some(pk) => msg.verify(labels::EVENT, pk),
                None => false,
            }
        }
    }

    pub(super) fn on_event_msg(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: Signed<Event>,
        forwarded: bool,
    ) {
        if !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        if !self.verify_event(ctx, &msg, forwarded) {
            return;
        }
        if self.seen_events.contains(&msg.payload.id) {
            return;
        }
        // Forward to other affected domains at *receipt* rather than after
        // local consensus: the domains' agreement rounds then run in
        // parallel, which keeps the cross-domain ordering handshake's
        // serial segment chain off the consensus critical path.
        if !msg.payload.forwarded && self.is_lowest() {
            self.forward_event(ctx, &msg.payload);
        }
        if self.in_phase_change || self.recovering {
            // Mid-reshare or mid-recovery: hold the event until the control
            // plane is back in a state where it can order it.
            self.queued_events.push(msg.payload);
            return;
        }
        // Controller-aggregation mode: the aggregator is the switches' sole
        // contact and relays events into the control plane (paper §4.2).
        self.submit_op(ctx, crate::msg::OrderedOp::Event(msg.payload));
    }
}
