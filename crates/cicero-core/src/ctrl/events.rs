//! Event processing: delivering totally-ordered events into the network
//! application, projecting and releasing this domain's updates, forwarding
//! events to other affected domains, and dispatching signed updates.

use super::ControllerActor;
use crate::config::{Aggregation, Mode};
use crate::msg::{Net, SegwayBody};
use crate::obs::Obs;
use crate::runtime::labels;
use blscrypto::bls::PartialSignature;
use controller::app::NetworkApp;
use controller::scheduler::ScheduledUpdate;
use simnet::node::Host;
use simnet::time::SimDuration;
use southbound::envelope::{ShareSigned, Signed};
use southbound::types::{ControllerId, Event, EventKind, NetworkUpdate, SwitchId, UpdateId};
use std::collections::{BTreeMap, BTreeSet};

impl ControllerActor {
    pub(super) fn process_event(&mut self, ctx: &mut dyn Host<Net, Obs>, event: Event) {
        if !self.seen_events.insert(event.id) {
            return;
        }
        if self.shared.cfg.trace_deliveries {
            ctx.observe(Obs::EventDelivered {
                domain: self.domain,
                controller: self.id.0,
                event: event.id,
            });
        }
        if self.is_lowest() {
            ctx.observe(Obs::EventProcessed {
                domain: self.domain,
                event: event.id,
            });
        }
        // Cross-domain bookkeeping events.
        if let EventKind::MembershipChanged {
            domain,
            controller,
            added,
        } = event.kind
        {
            let members = self.remote_members.entry(domain).or_default();
            if added {
                if !members.contains(&controller) {
                    members.push(controller);
                    members.sort();
                }
            } else {
                members.retain(|&c| c != controller);
            }
            return;
        }
        // Forward to other affected domains (paper §4.1). Normally already
        // done at event receipt (so the domains' consensus rounds overlap);
        // this is the fallback for events that reached consensus without
        // passing through this controller's inbox — e.g. after the
        // forwarding aggregator crashed before forwarding.
        if !event.forwarded && self.is_lowest() {
            self.forward_event(ctx, &event);
        }
        // Compute, schedule and release this domain's updates. The schedule
        // is computed over the *full* update list so dependencies that cross
        // domain boundaries survive the projection onto this domain; foreign
        // dependencies become barrier ids released by the cross-domain
        // handshake (DESIGN.md §3).
        let all = self.app.handle_event(&event, &self.shared.topo);
        let own: Vec<NetworkUpdate> = all
            .iter()
            .filter(|u| {
                self.shared.dir.domain_of_switch.get(&u.switch) == Some(&self.domain)
            })
            .copied()
            .collect();
        if own.is_empty() {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.event_process);
        let schedule = if self.shared.cfg.mode == Mode::Segway {
            // Segway: one controller round. Dependencies (own and foreign
            // alike) are compiled into gate/notify metadata and enforced on
            // the data plane by signed switch-to-switch readies, so every
            // update is released immediately — no held releases, no
            // cross-domain handshake.
            self.segway_schedule(&event, &all)
        } else if !self.shared.cfg.cross_domain_handshake || own.len() == all.len() {
            self.scheduler.schedule(&own)
        } else {
            self.cross_domain_schedule(ctx, &event, &all)
        };
        let ready = self.pending.admit(schedule, ctx.now());
        let mut pipeline = self.shared.cfg.costs.event_pipeline;
        if self.shared.cfg.mode.is_signed() {
            pipeline += self.shared.cfg.costs.bls_verify;
        }
        for u in ready {
            self.send_update_delayed(ctx, u, pipeline);
        }
        self.arm_retry(ctx);
    }

    /// Segway scheduling: runs the scheduler over the *full* update list,
    /// then projects onto this domain, recording for each own update its
    /// gates (the updates it waits for, with the switch that will announce
    /// each) and its notify set (the switches whose updates it gates). The
    /// returned schedule carries *no* dependencies: ordering moved to the
    /// data plane, so the controller pushes everything in one round.
    fn segway_schedule(
        &mut self,
        event: &Event,
        all: &[NetworkUpdate],
    ) -> Vec<ScheduledUpdate> {
        let full = self.scheduler.schedule(all);
        let switch_of: BTreeMap<UpdateId, SwitchId> =
            all.iter().map(|u| (u.id, u.switch)).collect();
        let cross_domain = all.iter().any(|u| {
            self.shared.dir.domain_of_switch.get(&u.switch) != Some(&self.domain)
        });
        if cross_domain {
            // Retained so a stuck own update can re-drive the forward
            // (`reforward_segway`) — Segway has no handshake sweep to
            // recover a dropped `ForwardedEvent`.
            self.segway_events.insert(event.id, (*event, 0));
        }
        let mut out = Vec::new();
        for su in &full {
            if self.shared.dir.domain_of_switch.get(&su.update.switch)
                != Some(&self.domain)
            {
                continue;
            }
            let gates: Vec<(UpdateId, SwitchId)> = su
                .deps
                .iter()
                .filter_map(|d| switch_of.get(d).map(|&s| (*d, s)))
                .collect();
            let mut notify: Vec<SwitchId> = full
                .iter()
                .filter(|v| v.deps.contains(&su.update.id))
                .map(|v| v.update.switch)
                .collect();
            notify.sort();
            notify.dedup();
            self.segway_meta.insert(su.update.id, (gates, notify));
            out.push(ScheduledUpdate {
                update: su.update,
                deps: BTreeSet::new(),
            });
        }
        out
    }

    /// Forwards `event` to the first member of every other affected domain,
    /// at most once per event (the lowest live controller forwards, to
    /// avoid n copies).
    pub(super) fn forward_event(&mut self, ctx: &mut dyn Host<Net, Obs>, event: &Event) {
        if !self.forwarded_events.insert(event.id) {
            return;
        }
        self.send_forward(ctx, event);
    }

    /// Sends the signed forward of `event` to the first member of every
    /// other affected domain. No dedup — [`Self::forward_event`] guards the
    /// first copy, [`Self::reforward_segway`] deliberately repeats it.
    fn send_forward(&mut self, ctx: &mut dyn Host<Net, Obs>, event: &Event) {
        let affected = self
            .shared
            .policy
            .affected_domains(event, &self.shared.topo);
        for d in affected {
            if d == self.domain {
                continue;
            }
            let Some(target) = self
                .remote_members
                .get(&d)
                .and_then(|ms| ms.first().copied())
            else {
                continue;
            };
            let fwd = Event {
                forwarded: true,
                ..*event
            };
            let signed = self.sign_forward(ctx, fwd);
            ctx.send(
                self.shared.dir.controller(d, target),
                Net::ForwardedEvent(signed),
            );
        }
    }

    /// Segway's replacement for the handshake sweep's re-forwards: while
    /// this (lowest) controller is still retrying an own update of a
    /// cross-domain event, the remote domain may have lost the one
    /// `ForwardedEvent` copy and with it the whole gate chain — so the
    /// event is re-forwarded alongside each retry wave. Receivers absorb
    /// duplicates through their event dedup; the update retry budget
    /// bounds the re-forward count.
    pub(super) fn reforward_segway(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        event_id: southbound::types::EventId,
    ) {
        if !self.is_lowest() {
            return;
        }
        let Some((event, attempts)) = self.segway_events.get_mut(&event_id) else {
            return;
        };
        *attempts += 1;
        let (event, attempt) = (*event, *attempts);
        ctx.observe(Obs::ForwardRetransmitted {
            domain: self.domain,
            controller: self.id.0,
            event: event_id,
            attempt,
        });
        self.send_forward(ctx, &event);
    }

    pub(super) fn sign_forward(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        event: Event,
    ) -> Signed<Event> {
        let phase = self.view.phase();
        let msg_id = self.msg_id();
        if self.shared.cfg.mode.is_signed() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        }
        if self.shared.real_crypto() && self.shared.cfg.mode.is_signed() {
            let key = self.identity.as_ref().expect("real mode identity");
            Signed::sign(labels::FORWARD, event, phase, msg_id, key)
        } else {
            Signed {
                payload: event,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        }
    }

    pub(super) fn send_update_delayed(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        update: NetworkUpdate,
        extra: SimDuration,
    ) {
        let switch_node = self.shared.dir.switch(update.switch);
        match self.shared.cfg.mode {
            Mode::Centralized | Mode::CrashTolerant => {
                ctx.send_delayed(
                    switch_node,
                    Net::UpdatePlain {
                        update,
                        from: self.id,
                    },
                    extra,
                );
            }
            Mode::Cicero { aggregation } => {
                let sign = self.shared.cfg.costs.update_sign;
                ctx.charge_cpu(SimDuration::from_nanos(sign.as_nanos() / 3));
                let extra = extra + sign;
                let phase = self.view.phase();
                let msg_id = self.msg_id();
                let msg = if self.shared.real_crypto() {
                    let share = self.share.as_ref().expect("real mode share");
                    ShareSigned::sign(labels::UPDATE, update, phase, msg_id, share)
                } else {
                    ShareSigned {
                        payload: update,
                        phase,
                        msg_id,
                        partial: PartialSignature {
                            index: self.id.0,
                            sig: self.shared.keys.dummy.0,
                        },
                    }
                };
                match aggregation {
                    Aggregation::Switch => {
                        ctx.send_delayed(switch_node, Net::UpdateMsg(msg), extra)
                    }
                    Aggregation::Controller => {
                        let agg = self.view.aggregator();
                        ctx.send_delayed(
                            self.node_of(agg),
                            Net::UpdateToAggregator(msg),
                            extra,
                        );
                    }
                }
            }
            Mode::Segway => {
                let sign = self.shared.cfg.costs.update_sign;
                ctx.charge_cpu(SimDuration::from_nanos(sign.as_nanos() / 3));
                let extra = extra + sign;
                let (gates, notify) = self
                    .segway_meta
                    .get(&update.id)
                    .cloned()
                    .unwrap_or_default();
                let body = SegwayBody {
                    update,
                    gates,
                    notify,
                };
                let phase = self.view.phase();
                let msg_id = self.msg_id();
                let msg = if self.shared.real_crypto() {
                    let share = self.share.as_ref().expect("real mode share");
                    ShareSigned::sign(labels::SEGWAY, body, phase, msg_id, share)
                } else {
                    ShareSigned {
                        payload: body,
                        phase,
                        msg_id,
                        partial: PartialSignature {
                            index: self.id.0,
                            sig: self.shared.keys.dummy.0,
                        },
                    }
                };
                ctx.send_delayed(switch_node, Net::SegwayUpdate(msg), extra);
            }
        }
    }

    // ----- inbound verification ------------------------------------------

    fn verify_event(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: &Signed<Event>,
        forwarded: bool,
    ) -> bool {
        if !self.shared.cfg.mode.is_signed() {
            return true;
        }
        // Verification cost is latency, not serialized CPU, on the paper's
        // 12-core controllers: it is folded into the event pipeline delay.
        let _ = &ctx;
        if !self.shared.real_crypto() {
            return true;
        }
        if forwarded {
            let sender = (msg.payload.origin, ControllerId(msg.msg_id.origin));
            match self.shared.keys.controller_pk.get(&sender) {
                Some(pk) => msg.verify(labels::FORWARD, pk),
                None => false,
            }
        } else {
            match self.shared.keys.switch_pk.get(&SwitchId(msg.msg_id.origin)) {
                Some(pk) => msg.verify(labels::EVENT, pk),
                None => false,
            }
        }
    }

    pub(super) fn on_event_msg(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        msg: Signed<Event>,
        forwarded: bool,
    ) {
        if !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        if !self.verify_event(ctx, &msg, forwarded) {
            return;
        }
        if self.seen_events.contains(&msg.payload.id) {
            return;
        }
        // Forward to other affected domains at *receipt* rather than after
        // local consensus: the domains' agreement rounds then run in
        // parallel, which keeps the cross-domain ordering handshake's
        // serial segment chain off the consensus critical path.
        if !msg.payload.forwarded && self.is_lowest() {
            self.forward_event(ctx, &msg.payload);
        }
        if self.in_phase_change || self.recovering {
            // Mid-reshare or mid-recovery: hold the event until the control
            // plane is back in a state where it can order it.
            self.queued_events.push(msg.payload);
            return;
        }
        // Controller-aggregation mode: the aggregator is the switches' sole
        // contact and relays events into the control plane (paper §4.2).
        self.submit_op(ctx, crate::msg::OrderedOp::Event(msg.payload));
    }
}
