//! Durable controller state: write-ahead logging, crash recovery, and
//! snapshot state sync.
//!
//! Every externally meaningful state transition — a consensus slot accepted
//! or prepared, an ordered op delivered, a switch ack verified, a
//! cross-domain barrier signer counted — is appended to a per-controller
//! WAL (checksummed frames over a pluggable [`Disk`](substrate::storage::Disk))
//! before the transition's outputs leave the actor. On restart the snapshot
//! plus WAL tail replays through the **real** handlers under a [`MuteHost`]
//! that forwards time/identity/randomness but swallows sends, timers, and
//! observations: derived state (routing app, pending-update graph, barrier
//! handshake, replica bindings) is reconstructed without re-emitting a
//! single message. The retry layer then re-transmits whatever was genuinely
//! in flight — idempotent at the switches, which de-duplicate by update id
//! and re-ack duplicates.
//!
//! Snapshots are *compacted logs in the same record alphabet*, written
//! atomically at quiescent points and followed by a WAL truncate; recovery
//! therefore has exactly one replay path. A crash between snapshot write
//! and truncate replays some records twice, which is safe: every replay
//! step is idempotent (`seen_events`, acked sets, signer sets).
//!
//! Known limitation (documented in DESIGN.md §Durability): membership
//! phase-changes are not re-run during muted replay — the ops are archived
//! for state sync, but a controller that crashes mid-reshare rejoins with
//! its pre-change key material. Crash-recovery scenarios therefore assume a
//! stable membership, which is what the simcheck generator enforces.

use super::ControllerActor;
use crate::msg::{Net, OrderedOp, WalRecord};
use crate::obs::Obs;
use bft::message::Slot;
use bft::replica::JournalRecord;
use simnet::node::{Host, NodeId, TimerToken};
use simnet::time::{SimDuration, SimTime};
use southbound::codec::Wire;
use southbound::types::{ControllerId, DomainId, UpdateId};
use substrate::buf::BytesMut;
use substrate::rng::StdRng;
use substrate::storage::{read_snapshot, write_snapshot, DiskHandle, Wal};

/// WAL file name on the controller's disk.
const WAL_FILE: &str = "wal";
/// Snapshot file name on the controller's disk.
const SNAP_FILE: &str = "snapshot";
/// WAL records accumulated before the next quiescent point compacts them
/// into a snapshot.
const SNAPSHOT_EVERY: usize = 64;
/// Ticks between `SyncRequest` re-broadcasts while recovering (the first
/// request or its replies may be lost).
const SYNC_RESEND_TICKS: u32 = 40; // 200 ms at the 5 ms tick

/// A [`Host`] wrapper for crash-recovery replay: forwards time, identity
/// and randomness (so replayed handlers make the same internal decisions)
/// but discards every outward effect — sends, timers, observations, CPU
/// charges, crashes. Replay reconstructs state; it must not re-emit
/// protocol traffic or re-count observations the first life already
/// produced.
struct MuteHost<'a> {
    inner: &'a mut dyn Host<Net, Obs>,
}

impl Host<Net, Obs> for MuteHost<'_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn rng(&mut self) -> &mut StdRng {
        self.inner.rng()
    }

    fn send(&mut self, _to: NodeId, _msg: Net) {}

    fn send_delayed(&mut self, _to: NodeId, _msg: Net, _extra: SimDuration) {}

    fn set_timer(&mut self, _delay: SimDuration, _token: TimerToken) {}

    fn charge_cpu(&mut self, _d: SimDuration) {}

    fn observe(&mut self, _obs: Obs) {}

    fn crash(&mut self) {}
}

fn journal_to_record(j: JournalRecord<OrderedOp>) -> WalRecord {
    match j {
        JournalRecord::View(v) => WalRecord::BftView(v),
        JournalRecord::Accepted { view, seq, slot } => WalRecord::BftAccepted {
            view,
            seq,
            op: match slot {
                Slot::Payload(p) => Some(p),
                Slot::Noop => None,
            },
        },
        JournalRecord::Prepared { view, seq, digest } => {
            WalRecord::BftPrepared { view, seq, digest }
        }
    }
}

impl ControllerActor {
    /// Attaches durable storage. Opens (and torn-tail-repairs) the WAL and
    /// reads the snapshot; the recovered records replay on the next
    /// `on_start`. With `recovering` set, the controller also withholds
    /// itself from consensus and requests a state-sync from its peers (the
    /// restart-after-crash path); a fresh boot finds both files empty and
    /// this is a no-op beyond arming the log.
    pub fn attach_disk(&mut self, disk: DiskHandle, recovering: bool) {
        let (wal, tail) = Wal::open(disk.clone(), WAL_FILE);
        let mut records = Vec::new();
        if let Some(snap) = read_snapshot(&disk, SNAP_FILE) {
            let mut buf = &snap[..];
            while !buf.is_empty() {
                match WalRecord::decode(&mut buf) {
                    Ok(r) => records.push(r),
                    // The snapshot frame checksum passed, so this is a
                    // version/corruption edge: keep the valid prefix.
                    Err(_) => break,
                }
            }
        }
        for frame in tail {
            if let Ok(r) = WalRecord::from_wire(&frame) {
                records.push(r);
            }
        }
        self.disk = Some(disk);
        self.recovered = records;
        self.recovering = recovering && self.active && self.uses_consensus();
        self.wal = Some(wal);
    }

    /// `true` while this controller is state-syncing after a restart.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Durability counters: `(wal records since last snapshot, archived
    /// deliveries)` — tests and the engine watchdog.
    pub fn durability_stats(&self) -> (usize, usize) {
        (self.records_since_snapshot, self.delivered_ops.len())
    }

    /// Appends one record to the WAL (no-op without attached storage).
    pub(super) fn log_record(&mut self, rec: &WalRecord) {
        if let Some(w) = self.wal.as_mut() {
            w.append(&rec.to_wire());
            self.records_since_snapshot += 1;
        }
    }

    /// Logs and archives a consensus delivery (write-ahead: called before
    /// the op is acted on).
    pub(super) fn record_delivery(&mut self, seq: u64, op: &OrderedOp) {
        self.log_record(&WalRecord::Deliver {
            seq,
            op: op.clone(),
        });
        self.delivered_ops.push((seq, op.clone()));
    }

    /// Drains the replica's journal into the WAL. Must run before the
    /// outputs of the same replica call go on the wire (write-ahead
    /// discipline: a vote is persisted before anyone can observe it).
    pub(super) fn persist_journal(&mut self) {
        let Some(replica) = self.replica.as_mut() else {
            return;
        };
        let recs = replica.take_journal();
        if self.wal.is_none() {
            return;
        }
        for j in recs {
            let rec = journal_to_record(j);
            self.log_record(&rec);
        }
    }

    /// Highest archived consensus sequence (the state-sync frontier).
    fn delivered_frontier(&self) -> u64 {
        self.delivered_ops.last().map(|(s, _)| *s).unwrap_or(0)
    }

    /// Replays the records recovered by [`ControllerActor::attach_disk`]
    /// through the real handlers under a [`MuteHost`]. Called once from
    /// `on_start`, before any timer is armed.
    pub(super) fn replay_recovered(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        if self.recovered.is_empty() {
            return;
        }
        let records = std::mem::take(&mut self.recovered);
        let mut delivered: Vec<(u64, OrderedOp)> = Vec::new();
        let mut mute = MuteHost { inner: ctx };
        for rec in records {
            match rec {
                WalRecord::Deliver { seq, op } => {
                    self.delivered_ops.push((seq, op.clone()));
                    delivered.push((seq, op.clone()));
                    match op {
                        OrderedOp::Event(e) => self.process_event(&mut mute, e),
                        // Membership replay is out of scope (see module
                        // doc): the op stays archived for state sync but
                        // the phase change is not re-run.
                        OrderedOp::AddController(_) | OrderedOp::RemoveController(_) => {}
                    }
                }
                WalRecord::Acked(id) => {
                    let now = mute.now();
                    // Ready updates released by the ack re-enter the
                    // in-flight set; the retry timer re-sends them after
                    // recovery (switch-side dedup absorbs duplicates).
                    let _ = self.pending.ack(id, now);
                }
                WalRecord::BarrierSigner {
                    barrier,
                    domain,
                    controller,
                } => {
                    self.restore_barrier_signer(&mut mute, barrier, domain, controller);
                }
                WalRecord::BftView(v) => {
                    if let Some(r) = self.replica.as_mut() {
                        r.restore_view(v);
                    }
                }
                WalRecord::BftAccepted { view, seq, op } => {
                    if let Some(r) = self.replica.as_mut() {
                        let slot = op.map(Slot::Payload).unwrap_or(Slot::Noop);
                        r.restore_accepted(view, seq, slot);
                    }
                }
                WalRecord::BftPrepared { view, seq, digest } => {
                    if let Some(r) = self.replica.as_mut() {
                        r.restore_prepared(view, seq, digest);
                    }
                }
            }
        }
        if let Some(r) = self.replica.as_mut() {
            r.fast_forward(delivered);
        }
        // Muted replay set the armed flag without a live timer; re-arming
        // happens with the real host once `on_start` proceeds.
        self.retry_armed = false;
        // Journal records produced by restore calls are already durable.
        if let Some(r) = self.replica.as_mut() {
            let _ = r.take_journal();
        }
    }

    /// Broadcasts a state-sync request to the domain peers (restart path).
    pub(super) fn send_sync_request(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        let have = self.delivered_frontier();
        for m in self.members() {
            if m != self.id {
                ctx.send(
                    self.node_of(m),
                    Net::SyncRequest {
                        domain: self.domain,
                        from: self.id,
                        have,
                    },
                );
            }
        }
    }

    /// Per-tick recovery duties: re-broadcast the sync request while no
    /// reply has arrived (the first one may have been lost).
    pub(super) fn tick_recovery(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        if !self.recovering {
            return;
        }
        self.sync_ticks += 1;
        if self.sync_ticks >= SYNC_RESEND_TICKS {
            self.sync_ticks = 0;
            self.send_sync_request(ctx);
        }
    }

    /// Answers a restarted peer's state-sync request with every archived
    /// delivery past its frontier.
    pub(super) fn on_sync_request(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        domain: DomainId,
        from: ControllerId,
        have: u64,
    ) {
        if !self.active || self.recovering || domain != self.domain || from == self.id {
            return;
        }
        let ops: Vec<(u64, OrderedOp)> = self
            .delivered_ops
            .iter()
            .filter(|(s, _)| *s > have)
            .cloned()
            .collect();
        let signers = self
            .barrier_signer_records()
            .into_iter()
            .filter_map(|r| match r {
                WalRecord::BarrierSigner {
                    barrier,
                    domain,
                    controller,
                } => Some((barrier, domain, controller)),
                _ => None,
            })
            .collect();
        ctx.send(
            self.node_of(from),
            Net::SyncReply {
                from: self.id,
                frontier: self.delivered_frontier(),
                ops,
                acked: self.pending.acked_ids().collect(),
                signers,
            },
        );
    }

    /// Completes recovery from the first peer snapshot transfer: the
    /// missing deliveries are WAL-logged, muted-replayed, and the replica
    /// fast-forwarded; the peer's ack archive then retires every replayed
    /// update that was already acknowledged before the crash (without it a
    /// disk-lost restart would wait forever on acks nobody will re-send);
    /// finally the controller rejoins consensus and re-arms retransmission
    /// for everything the replay left in flight.
    pub(super) fn on_sync_reply(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        from: ControllerId,
        ops: Vec<(u64, OrderedOp)>,
        acked: Vec<UpdateId>,
        signers: Vec<(UpdateId, DomainId, ControllerId)>,
    ) {
        if !self.recovering {
            return;
        }
        let mut delivered: Vec<(u64, OrderedOp)> = Vec::new();
        for (seq, op) in ops {
            if seq <= self.delivered_frontier() {
                continue;
            }
            self.record_delivery(seq, &op);
            delivered.push((seq, op.clone()));
            if let OrderedOp::Event(e) = op {
                let mut mute = MuteHost { inner: ctx };
                self.process_event(&mut mute, e);
            }
        }
        let now = ctx.now();
        for id in acked {
            // Same treatment as a WAL `Acked` record: retire the update
            // and drain its dependents; anything the ack releases is
            // already in the peer's acked set too, so nothing new goes on
            // the wire here. Logged so a second crash replays it locally.
            self.log_record(&WalRecord::Acked(id));
            let _ = self.pending.ack(id, now);
        }
        for (barrier, domain, controller) in signers {
            // Receipted segment reports are never retransmitted to us, so
            // the peer's signer facts are the only way to re-learn a
            // quorum counted before the crash. Muted like WAL replay:
            // updates a release frees re-enter the in-flight set and the
            // retry timer below re-sends them.
            self.log_record(&WalRecord::BarrierSigner {
                barrier,
                domain,
                controller,
            });
            let mut mute = MuteHost { inner: ctx };
            self.restore_barrier_signer(&mut mute, barrier, domain, controller);
        }
        if let Some(r) = self.replica.as_mut() {
            r.fast_forward(delivered);
            let _ = r.take_journal();
        }
        self.recovering = false;
        self.retry_armed = false;
        self.arm_retry(ctx);
        ctx.observe(Obs::ControllerRecovered {
            domain: self.domain,
            controller: self.id.0,
            peer: from.0,
            frontier: self.delivered_frontier(),
        });
        // Events queued while syncing enter consensus now.
        let queued = std::mem::take(&mut self.queued_events);
        for e in queued {
            self.submit_op(ctx, OrderedOp::Event(e));
        }
    }

    /// `true` when no protocol work is in progress anywhere in this actor —
    /// the only points where a compacting snapshot equals the log.
    fn quiescent(&self) -> bool {
        self.pending.is_drained()
            && self.unprocessed.is_empty()
            && !self.in_phase_change
            && self
                .replica
                .as_ref()
                .map(|r| r.pending_len() == 0)
                .unwrap_or(true)
            && self.handshake_idle()
    }

    /// Compacts the log into an atomic snapshot and truncates the WAL,
    /// when enough records accumulated and the actor is quiescent. Runs on
    /// every tick; cheap when the threshold is not met.
    pub(super) fn maybe_snapshot(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        if self.wal.is_none()
            || self.recovering
            || self.records_since_snapshot < SNAPSHOT_EVERY
            || !self.quiescent()
        {
            return;
        }
        let mut buf = BytesMut::new();
        for (seq, op) in &self.delivered_ops {
            WalRecord::Deliver {
                seq: *seq,
                op: op.clone(),
            }
            .encode(&mut buf);
        }
        let acked: Vec<_> = self.pending.acked_ids().collect();
        for id in acked {
            WalRecord::Acked(id).encode(&mut buf);
        }
        for rec in self.barrier_signer_records() {
            rec.encode(&mut buf);
        }
        if let Some(r) = self.replica.as_ref() {
            for j in r.journal_snapshot() {
                journal_to_record(j).encode(&mut buf);
            }
        }
        let records = self.records_since_snapshot;
        let disk = self.disk.as_ref().expect("wal implies disk");
        write_snapshot(disk, SNAP_FILE, buf.as_slice());
        if let Some(w) = self.wal.as_mut() {
            w.truncate();
        }
        self.records_since_snapshot = 0;
        ctx.observe(Obs::SnapshotTaken {
            domain: self.domain,
            controller: self.id.0,
            compacted: records as u64,
        });
    }
}
