//! The cross-domain ordering handshake (DESIGN.md §3): barriers held for
//! foreign segments, segment-applied reports for own segments foreign
//! updates depend on, boundary-release receipts, and the re-forward /
//! retransmission loops that keep the handshake live under loss.

use super::ControllerActor;
use crate::msg::{Net, ReleaseBody, SegmentBody};
use crate::obs::Obs;
use crate::runtime::labels;
use controller::pending::RetryPolicy;
use controller::scheduler::{domain_segments, ScheduledUpdate};
use simnet::node::Host;
use simnet::time::{SimDuration, SimTime};
use southbound::envelope::Signed;
use southbound::types::{ControllerId, DomainId, Event, EventId, NetworkUpdate, UpdateId};
use std::collections::{BTreeMap, BTreeSet};
use substrate::collections::DetSet;

/// Synthetic dependency ids standing for "a foreign domain's path segment
/// has been applied". Real per-event sequence numbers are tiny, so the top
/// of the `u32` range is free for barriers.
const BARRIER_SEQ_BASE: u32 = 0xFFFF_0000;

pub(super) fn barrier_id(event: EventId, segment: u32) -> UpdateId {
    UpdateId {
        event,
        seq: BARRIER_SEQ_BASE + segment,
    }
}

/// What the upstream side of one cross-domain barrier still expects. Set
/// when local event processing registers the dependency; `SegmentApplied`
/// reports may legitimately arrive earlier and accumulate in
/// [`BarrierState::signers`] until then.
pub(super) struct BarrierExpect {
    /// The domain whose segment must apply before the barrier releases.
    downstream: DomainId,
    /// Distinct downstream reporters required.
    quorum: usize,
    /// The event, kept for re-forwarding if the downstream domain went
    /// quiet (its copy of the forwarded event may have been lost).
    event: Event,
    /// Re-forward attempts spent.
    attempts: u32,
    /// Next re-forward deadline.
    next_due: SimTime,
}

/// Upstream half of the cross-domain ordering handshake: collects
/// `SegmentApplied` signers for one `(event, segment)` until a quorum of
/// the downstream domain has reported, then acks the barrier id.
pub(super) struct BarrierState {
    /// Distinct `(domain, controller)` reporters seen (signature-checked).
    signers: DetSet<(DomainId, u32)>,
    /// Release condition, once our own schedule registered the dependency.
    expected: Option<BarrierExpect>,
    /// Set once released; late duplicates are receipted but change nothing.
    released: bool,
}

impl BarrierState {
    fn new() -> Self {
        BarrierState {
            signers: DetSet::new(),
            expected: None,
            released: false,
        }
    }
}

/// Downstream half of the handshake: waits until every update of an own
/// segment is switch-acked, then reports `SegmentApplied` to each upstream
/// controller until all of them receipted (or the retry budget is spent).
pub(super) struct SegWatch {
    /// Own-segment updates not yet switch-acked.
    pub(super) remaining: DetSet<UpdateId>,
    /// Domains holding a barrier on this segment.
    upstreams: Vec<DomainId>,
    /// `(domain, controller)` targets that have not receipted yet.
    pending_receipts: DetSet<(DomainId, u32)>,
    /// Report attempts spent.
    attempts: u32,
    /// Next retransmission deadline.
    next_due: SimTime,
    /// Set once the first report went out.
    pub(super) sending: bool,
}

impl ControllerActor {
    /// Projects the full-event schedule onto this domain. Dependencies on
    /// foreign updates are rewritten to per-segment barrier ids (acked when
    /// a quorum of the owning domain reports the segment applied), and
    /// watches are registered for own segments that foreign updates depend
    /// on so this controller reports them upstream once they drain.
    pub(super) fn cross_domain_schedule(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        event: &Event,
        all: &[NetworkUpdate],
    ) -> Vec<ScheduledUpdate> {
        let full = self.scheduler.schedule(all);
        let segs = domain_segments(all, |s| {
            self.shared.dir.domain_of_switch.get(&s).copied()
        });
        let mut seg_of: BTreeMap<UpdateId, u32> = BTreeMap::new();
        for seg in &segs {
            for &id in &seg.updates {
                seg_of.insert(id, seg.index);
            }
        }
        let own_ids: DetSet<UpdateId> = all
            .iter()
            .filter(|u| {
                self.shared.dir.domain_of_switch.get(&u.switch) == Some(&self.domain)
            })
            .map(|u| u.id)
            .collect();
        // Foreign segments our updates depend on → barriers to hold, and
        // own segments foreign updates depend on → watches to report.
        let mut barrier_deps: BTreeMap<u32, DomainId> = BTreeMap::new();
        let mut watched: BTreeMap<u32, DetSet<DomainId>> = BTreeMap::new();
        let mut projected = Vec::new();
        for s in &full {
            let sd = self
                .shared
                .dir
                .domain_of_switch
                .get(&s.update.switch)
                .copied();
            if sd == Some(self.domain) {
                let mut deps = BTreeSet::new();
                for d in &s.deps {
                    if own_ids.contains(d) {
                        deps.insert(*d);
                    } else if let Some(&k) = seg_of.get(d) {
                        deps.insert(barrier_id(event.id, k));
                        barrier_deps.insert(k, segs[k as usize].domain);
                    }
                }
                projected.push(ScheduledUpdate {
                    update: s.update,
                    deps,
                });
            } else if let Some(upstream) = sd {
                for d in &s.deps {
                    if let Some(&k) = seg_of.get(d) {
                        if segs[k as usize].domain == self.domain {
                            watched.entry(k).or_default().insert(upstream);
                        }
                    }
                }
            }
        }
        let now = ctx.now();
        for (k, downstream) in barrier_deps {
            let quorum = self.downstream_quorum(downstream);
            let due = now + self.forward_policy().backoff(barrier_id(event.id, k), 1);
            let st = self
                .barriers
                .entry((event.id, k))
                .or_insert_with(BarrierState::new);
            if st.expected.is_none() && !st.released {
                st.expected = Some(BarrierExpect {
                    downstream,
                    quorum,
                    event: Event {
                        forwarded: true,
                        ..*event
                    },
                    attempts: 0,
                    next_due: due,
                });
            }
            self.check_barrier_release(ctx, (event.id, k));
        }
        for (k, ups) in watched {
            let remaining: DetSet<UpdateId> = segs[k as usize]
                .updates
                .iter()
                .copied()
                .filter(|&id| !self.pending.is_acked(id))
                .collect();
            let drained = remaining.is_empty();
            self.seg_watch.insert(
                (event.id, k),
                SegWatch {
                    remaining,
                    upstreams: ups.into_iter().collect(),
                    pending_receipts: DetSet::new(),
                    attempts: 0,
                    next_due: now,
                    sending: false,
                },
            );
            if drained {
                self.start_segment_report(ctx, (event.id, k));
            }
        }
        self.arm_retry(ctx);
        projected
    }

    /// Distinct downstream reporters required before a barrier releases:
    /// enough that at least one is honest under the mode's fault model.
    fn downstream_quorum(&self, d: DomainId) -> usize {
        if self.shared.cfg.mode.is_cicero() {
            let n = self.remote_members.get(&d).map(|m| m.len()).unwrap_or(1);
            (n.saturating_sub(1)) / 3 + 1
        } else {
            // Centralized / crash-tolerant controllers never equivocate in
            // the fault model; a single report suffices.
            1
        }
    }

    /// Retry policy for barrier re-forwards (event-sized messages).
    fn forward_policy(&self) -> RetryPolicy {
        let rel = &self.shared.cfg.reliability;
        RetryPolicy {
            base: rel.event_retry_base,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.event_retry_budget } else { 0 },
            jitter_seed: self.shared.cfg.seed
                ^ (u64::from(self.domain.0) << 16)
                ^ u64::from(self.id.0).rotate_left(29),
        }
    }

    /// Retry policy for segment-applied reports (controller-to-controller).
    fn segment_policy(&self) -> RetryPolicy {
        let rel = &self.shared.cfg.reliability;
        RetryPolicy {
            base: rel.retry_base,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.retry_budget } else { 0 },
            jitter_seed: self.shared.cfg.seed
                ^ (u64::from(self.domain.0) << 40)
                ^ u64::from(self.id.0).rotate_left(47),
        }
    }

    /// Acks the barrier id (releasing held boundary updates) once a quorum
    /// of the expected downstream domain has reported its segment applied.
    fn check_barrier_release(&mut self, ctx: &mut dyn Host<Net, Obs>, key: (EventId, u32)) {
        {
            let Some(st) = self.barriers.get(&key) else {
                return;
            };
            if st.released {
                return;
            }
            let Some(exp) = st.expected.as_ref() else {
                return;
            };
            let have = st
                .signers
                .iter()
                .filter(|(d, _)| *d == exp.downstream)
                .count();
            if have < exp.quorum {
                return;
            }
        }
        if let Some(st) = self.barriers.get_mut(&key) {
            st.released = true;
        }
        ctx.observe(Obs::BoundaryReleased {
            domain: self.domain,
            controller: self.id.0,
            event: key.0,
            segment: key.1,
        });
        let mut extra = SimDuration::ZERO;
        if self.shared.cfg.mode.is_cicero() {
            extra = self.shared.cfg.costs.bls_verify;
        }
        let ready = self.pending.ack(barrier_id(key.0, key.1), ctx.now());
        for u in ready {
            self.send_update_delayed(ctx, u, extra);
        }
        self.arm_retry(ctx);
    }

    /// First transmission of a drained segment's report to every controller
    /// of every upstream domain holding a barrier on it.
    pub(super) fn start_segment_report(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        key: (EventId, u32),
    ) {
        let targets: Vec<(DomainId, ControllerId)> = {
            let Some(w) = self.seg_watch.get(&key) else {
                return;
            };
            if w.sending {
                return;
            }
            w.upstreams
                .iter()
                .flat_map(|&d| {
                    self.remote_members
                        .get(&d)
                        .into_iter()
                        .flatten()
                        .map(move |&c| (d, c))
                })
                .collect()
        };
        let due = ctx.now() + self.segment_policy().backoff(barrier_id(key.0, key.1), 1);
        let body = SegmentBody {
            event: key.0,
            segment: key.1,
            domain: self.domain,
            controller: self.id,
        };
        let signed = self.sign_segment(ctx, body);
        if let Some(w) = self.seg_watch.get_mut(&key) {
            w.sending = true;
            w.attempts = 1;
            w.next_due = due;
            w.pending_receipts = targets.iter().map(|&(d, c)| (d, c.0)).collect();
        }
        for (d, c) in targets {
            let Some(&node) = self.shared.dir.controller_node.get(&(d, c)) else {
                continue;
            };
            ctx.send(node, Net::SegmentApplied(signed.clone()));
        }
        ctx.observe(Obs::SegmentReported {
            domain: self.domain,
            controller: self.id.0,
            event: key.0,
            segment: key.1,
        });
        self.arm_retry(ctx);
    }

    fn sign_segment(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        body: SegmentBody,
    ) -> Signed<SegmentBody> {
        let phase = self.view.phase();
        let msg_id = self.msg_id();
        if self.shared.cfg.mode.is_cicero() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        }
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let key = self.identity.as_ref().expect("real mode identity");
            Signed::sign(labels::SEGMENT, body, phase, msg_id, key)
        } else {
            Signed {
                payload: body,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        }
    }

    fn sign_release(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        body: ReleaseBody,
    ) -> Signed<ReleaseBody> {
        let phase = self.view.phase();
        let msg_id = self.msg_id();
        if self.shared.cfg.mode.is_cicero() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        }
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let key = self.identity.as_ref().expect("real mode identity");
            Signed::sign(labels::RELEASE, body, phase, msg_id, key)
        } else {
            Signed {
                payload: body,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        }
    }

    /// Handles a downstream controller's segment-applied report.
    pub(super) fn on_segment_applied(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        m: Signed<SegmentBody>,
    ) {
        if !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        let body = m.payload;
        if body.controller != ControllerId(m.msg_id.origin) {
            return;
        }
        if self.shared.cfg.mode.is_cicero() && self.shared.real_crypto() {
            let pk = self
                .shared
                .keys
                .controller_pk
                .get(&(body.domain, body.controller));
            let valid = pk.map(|pk| m.verify(labels::SEGMENT, pk)).unwrap_or(false);
            if !valid {
                return;
            }
        }
        let fresh = {
            let st = self
                .barriers
                .entry((body.event, body.segment))
                .or_insert_with(BarrierState::new);
            st.signers.insert((body.domain, body.controller.0))
        };
        if fresh {
            // A counted signer is a durable fact: a restarted controller
            // must not demand the quorum twice (nor release without it).
            // Logged *before* the receipt goes out — the receipt stops the
            // downstream retransmitting, so if we crashed after sending but
            // before logging, the signer would be forgotten with no
            // retransmission left to re-teach it.
            self.log_record(&crate::msg::WalRecord::BarrierSigner {
                barrier: barrier_id(body.event, body.segment),
                domain: body.domain,
                controller: body.controller,
            });
        }
        // Receipt unconditionally — it only means "stop retransmitting to
        // me", never "released" — so duplicates and reports arriving before
        // our own barrier exists still silence the downstream sender.
        let receipt = ReleaseBody {
            event: body.event,
            segment: body.segment,
            domain: self.domain,
            controller: self.id,
        };
        let signed = self.sign_release(ctx, receipt);
        if let Some(&node) = self
            .shared
            .dir
            .controller_node
            .get(&(body.domain, body.controller))
        {
            ctx.send(node, Net::BoundaryRelease(signed));
        }
        self.check_barrier_release(ctx, (body.event, body.segment));
    }

    /// Crash-recovery replay of a logged barrier signer (ctrl/durable.rs).
    pub(super) fn restore_barrier_signer(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        barrier: UpdateId,
        domain: DomainId,
        controller: ControllerId,
    ) {
        let key = (barrier.event, barrier.seq.wrapping_sub(BARRIER_SEQ_BASE));
        {
            let st = self.barriers.entry(key).or_insert_with(BarrierState::new);
            st.signers.insert((domain, controller.0));
        }
        self.check_barrier_release(ctx, key);
    }

    /// Every counted barrier signer, as WAL records (snapshot body).
    pub(super) fn barrier_signer_records(&self) -> Vec<crate::msg::WalRecord> {
        let mut out = Vec::new();
        for (&(event, segment), st) in self.barriers.iter() {
            for &(domain, controller) in st.signers.iter() {
                out.push(crate::msg::WalRecord::BarrierSigner {
                    barrier: barrier_id(event, segment),
                    domain,
                    controller: ControllerId(controller),
                });
            }
        }
        out
    }

    /// `true` when the cross-domain handshake holds no unfinished work:
    /// every registered barrier released and every own-segment watch
    /// receipted (snapshot quiescence check).
    pub(super) fn handshake_idle(&self) -> bool {
        self.barriers
            .iter()
            .all(|(_, st)| st.released || st.expected.is_none())
            && self
                .seg_watch
                .iter()
                .all(|(_, w)| w.sending && w.pending_receipts.is_empty())
    }

    /// Handles an upstream controller's receipt for our segment report.
    pub(super) fn on_boundary_release(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        m: Signed<ReleaseBody>,
    ) {
        if !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        let body = m.payload;
        if body.controller != ControllerId(m.msg_id.origin) {
            return;
        }
        if self.shared.cfg.mode.is_cicero() && self.shared.real_crypto() {
            let pk = self
                .shared
                .keys
                .controller_pk
                .get(&(body.domain, body.controller));
            let valid = pk.map(|pk| m.verify(labels::RELEASE, pk)).unwrap_or(false);
            if !valid {
                return;
            }
        }
        let key = (body.event, body.segment);
        let done = match self.seg_watch.get_mut(&key) {
            Some(w) => {
                w.pending_receipts.remove(&(body.domain, body.controller.0));
                w.sending && w.pending_receipts.is_empty()
            }
            None => false,
        };
        if done {
            self.seg_watch.remove(&key);
        }
    }

    /// Earliest handshake retransmission deadline: segment reports still
    /// awaiting receipts, and (on the forwarding controller) barriers whose
    /// downstream domain may have lost the forwarded event.
    pub(super) fn handshake_next_due(&self) -> Option<SimTime> {
        let mut due: Option<SimTime> = None;
        let mut fold = |t: SimTime| {
            due = Some(match due {
                Some(d) if d <= t => d,
                _ => t,
            });
        };
        for w in self.seg_watch.values() {
            if w.sending && !w.pending_receipts.is_empty() {
                fold(w.next_due);
            }
        }
        if self.is_lowest() {
            for st in self.barriers.values() {
                if st.released {
                    continue;
                }
                if let Some(exp) = st.expected.as_ref() {
                    fold(exp.next_due);
                }
            }
        }
        due
    }

    /// Retransmits overdue handshake traffic (driven by the retry timer).
    pub(super) fn sweep_handshake(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        let now = ctx.now();
        let seg_policy = self.segment_policy();
        let mut resend: Vec<(EventId, u32)> = Vec::new();
        let mut give_up: Vec<(EventId, u32)> = Vec::new();
        for (key, w) in self.seg_watch.iter_mut() {
            if !w.sending || w.pending_receipts.is_empty() || w.next_due > now {
                continue;
            }
            if w.attempts >= seg_policy.budget {
                give_up.push(*key);
                continue;
            }
            w.attempts += 1;
            w.next_due = now + seg_policy.backoff(barrier_id(key.0, key.1), w.attempts);
            resend.push(*key);
        }
        for key in give_up {
            self.seg_watch.remove(&key);
        }
        for key in resend {
            self.resend_segment_report(ctx, key);
        }
        // Barriers still waiting on a quorum: the forwarded event (sent to
        // one downstream member) may have been lost, or its target crashed.
        // Re-forward to every member of the downstream domain; `seen_events`
        // dedups over there. Stamp our own domain as origin so receivers
        // verify against the actual forwarder's key.
        if self.is_lowest() {
            let fwd_policy = self.forward_policy();
            let mut forward: Vec<(EventId, DomainId, Event, u32)> = Vec::new();
            for (key, st) in self.barriers.iter_mut() {
                if st.released {
                    continue;
                }
                let Some(exp) = st.expected.as_mut() else {
                    continue;
                };
                if exp.next_due > now || exp.attempts >= fwd_policy.budget {
                    continue;
                }
                exp.attempts += 1;
                exp.next_due = now + fwd_policy.backoff(barrier_id(key.0, key.1), exp.attempts);
                forward.push((key.0, exp.downstream, exp.event, exp.attempts));
            }
            for (event_id, d, event, attempt) in forward {
                let members = self.remote_members.get(&d).cloned().unwrap_or_default();
                let refwd = Event {
                    origin: self.domain,
                    ..event
                };
                for c in members {
                    let Some(&node) = self.shared.dir.controller_node.get(&(d, c)) else {
                        continue;
                    };
                    let signed = self.sign_forward(ctx, refwd);
                    ctx.send(node, Net::ForwardedEvent(signed));
                }
                ctx.observe(Obs::ForwardRetransmitted {
                    domain: self.domain,
                    controller: self.id.0,
                    event: event_id,
                    attempt,
                });
            }
        }
    }

    /// Retransmits a segment report to the targets that have not receipted.
    fn resend_segment_report(&mut self, ctx: &mut dyn Host<Net, Obs>, key: (EventId, u32)) {
        let (targets, attempt) = {
            let Some(w) = self.seg_watch.get(&key) else {
                return;
            };
            let t: Vec<(DomainId, u32)> = w.pending_receipts.iter().copied().collect();
            (t, w.attempts)
        };
        let body = SegmentBody {
            event: key.0,
            segment: key.1,
            domain: self.domain,
            controller: self.id,
        };
        let signed = self.sign_segment(ctx, body);
        for (d, c) in targets {
            let Some(&node) = self
                .shared
                .dir
                .controller_node
                .get(&(d, ControllerId(c)))
            else {
                continue;
            };
            ctx.send(node, Net::SegmentApplied(signed.clone()));
        }
        ctx.observe(Obs::SegmentRetransmitted {
            domain: self.domain,
            controller: self.id.0,
            event: key.0,
            segment: key.1,
            attempt,
        });
    }
}
