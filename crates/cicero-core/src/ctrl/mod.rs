//! The controller protocol runtime (paper Figs. 7–8 and §5.1).
//!
//! Each controller actor embeds: a PBFT replica (event agreement), the
//! pluggable network application and update scheduler, the dependency-driven
//! pending-update tracker, the membership view with phase-change/resharing
//! logic, the optional aggregator role, and the heartbeat failure detector.
//!
//! The runtime is split into focused modules, all operating on the one
//! [`ControllerActor`] state machine through the host-agnostic
//! [`Host`](simnet::node::Host) API:
//!
//! * [`consensus`](self) — driving the PBFT replica and routing its outputs;
//! * `events` — event processing, cross-domain forwarding, update dispatch;
//! * `barriers` — the cross-domain ordering handshake (segment reports,
//!   boundary releases, re-forwards);
//! * `aggregate` — the optional aggregator role (controller aggregation);
//! * `delivery` — the retransmission / NACK reliable-delivery layer;
//! * `membership` — phase changes with public-key-preserving resharing.

mod aggregate;
mod barriers;
mod consensus;
mod delivery;
mod durable;
mod events;
mod membership;

use crate::config::Mode;
use crate::msg::{AckBody, Net, OrderedOp, WalRecord};
use crate::obs::Obs;
use crate::runtime::Shared;
use barriers::{BarrierState, SegWatch};
use bft::message::ReplicaId;
use bft::replica::Replica;
use blscrypto::bls::{KeyShare, PartialSignature, SecretKey};
use blscrypto::dkg::GroupPublic;
use blscrypto::reshare::ReshareDealing;
use controller::app::ShortestPathApp;
use controller::failure::HeartbeatDetector;
use controller::membership::ControlPlaneView;
use controller::pending::{PendingUpdates, RetryPolicy};
use controller::scheduler::{ReversePathScheduler, UpdateScheduler};
use membership::PendingReshare;
use simnet::node::{Actor, Host, NodeId, TimerToken};
use simnet::time::SimDuration;
use southbound::envelope::MsgId;
use southbound::types::{
    ControllerId, DomainId, Event, EventId, Phase, SwitchId, UpdateId,
};
use std::collections::BTreeMap;
use substrate::collections::{DetMap, DetSet};
use substrate::storage::{DiskHandle, Wal};
use std::sync::Arc;

use aggregate::AggBucket;

const TICK: TimerToken = TimerToken(1);
const HEARTBEAT: TimerToken = TimerToken(2);
const RETRY: TimerToken = TimerToken(3);
const TICK_PERIOD: SimDuration = SimDuration::from_millis(5);

/// The controller actor.
pub struct ControllerActor {
    shared: Arc<Shared>,
    domain: DomainId,
    id: ControllerId,
    identity: Option<SecretKey>,
    share: Option<KeyShare>,
    group: GroupPublic,
    view: ControlPlaneView,
    active: bool,
    replica: Option<Replica<OrderedOp>>,
    app: ShortestPathApp,
    scheduler: Box<dyn UpdateScheduler>,
    pending: PendingUpdates,
    seen_events: DetSet<EventId>,
    forwarded_events: DetSet<EventId>,
    unprocessed: BTreeMap<[u8; 32], OrderedOp>,
    queued_events: Vec<Event>,
    in_phase_change: bool,
    pending_reshare: Option<PendingReshare>,
    reshare_buf: BTreeMap<Phase, Vec<ReshareDealing>>,
    agg_buckets: DetMap<(UpdateId, Phase), Vec<AggBucket>>,
    phase_partials: BTreeMap<Phase, BTreeMap<u32, PartialSignature>>,
    remote_members: BTreeMap<DomainId, Vec<ControllerId>>,
    detector: HeartbeatDetector,
    barriers: DetMap<(EventId, u32), BarrierState>,
    seg_watch: DetMap<(EventId, u32), SegWatch>,
    /// Segway mode: per-update gate/notify metadata derived once from the
    /// full schedule at `process_event` time, consumed (and re-consumed on
    /// retransmission and NACK resync) by `send_update_delayed`.
    segway_meta: DetMap<UpdateId, (Vec<(UpdateId, SwitchId)>, Vec<SwitchId>)>,
    /// Segway mode: cross-domain events retained for re-forwarding, with a
    /// re-forward attempt counter. Segway has no handshake sweep to re-drive
    /// a dropped `ForwardedEvent`, so a stuck own update doubles as the
    /// signal (`reforward_segway`).
    segway_events: DetMap<EventId, (Event, u32)>,
    msg_seq: u64,
    retry_armed: bool,
    // ---- durability (ctrl/durable.rs) --------------------------------
    /// Durable storage, when provisioned.
    disk: Option<DiskHandle>,
    /// Open write-ahead log over `disk`.
    wal: Option<Wal>,
    /// Snapshot + WAL records awaiting replay at `on_start`.
    recovered: Vec<WalRecord>,
    /// Restarted-after-crash: withhold from consensus, state-sync first.
    recovering: bool,
    /// WAL records appended since the last compacting snapshot.
    records_since_snapshot: usize,
    /// Archive of every consensus delivery `(seq, op)` — the snapshot body
    /// and the state-sync answer set.
    delivered_ops: Vec<(u64, OrderedOp)>,
    /// Tick counter for `SyncRequest` re-broadcasts while recovering.
    sync_ticks: u32,
}

impl ControllerActor {
    /// Builds a controller.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shared: Arc<Shared>,
        domain: DomainId,
        id: ControllerId,
        identity: Option<SecretKey>,
        share: Option<KeyShare>,
        view: ControlPlaneView,
        active: bool,
    ) -> Self {
        let group = shared.keys.domains[&domain].group.clone();
        let replica =
            active.then(|| Self::build_replica(&view, id, shared.cfg.view_timeout_ticks));
        let rel = &shared.cfg.reliability;
        let policy = RetryPolicy {
            base: rel.retry_base,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.retry_budget } else { 0 },
            // Per-controller jitter stream: replicas must not retransmit in
            // lockstep or every retry wave collides at the switch.
            jitter_seed: shared.cfg.seed
                ^ (u64::from(domain.0) << 32)
                ^ u64::from(id.0).rotate_left(13),
        };
        let remote_members = shared
            .dir
            .initial_members
            .iter()
            .map(|(d, ms)| (*d, ms.clone()))
            .collect();
        let detector = HeartbeatDetector::new(
            shared
                .cfg
                .heartbeat
                .map(|p| p.saturating_mul(4))
                .unwrap_or(SimDuration::from_millis(500)),
        );
        ControllerActor {
            shared,
            domain,
            id,
            identity,
            share,
            group,
            view,
            active,
            replica,
            app: ShortestPathApp::new(),
            scheduler: Box::new(ReversePathScheduler),
            pending: PendingUpdates::new().with_policy(policy),
            seen_events: DetSet::new(),
            forwarded_events: DetSet::new(),
            unprocessed: BTreeMap::new(),
            queued_events: Vec::new(),
            in_phase_change: false,
            pending_reshare: None,
            reshare_buf: BTreeMap::new(),
            agg_buckets: DetMap::new(),
            phase_partials: BTreeMap::new(),
            remote_members,
            detector,
            barriers: DetMap::new(),
            seg_watch: DetMap::new(),
            segway_meta: DetMap::new(),
            segway_events: DetMap::new(),
            msg_seq: 0,
            retry_armed: false,
            disk: None,
            wal: None,
            recovered: Vec::new(),
            recovering: false,
            records_since_snapshot: 0,
            delivered_ops: Vec::new(),
            sync_ticks: 0,
        }
    }

    /// Replaces the update scheduler (pluggability seam, paper §3.1).
    pub fn set_scheduler(&mut self, s: Box<dyn UpdateScheduler>) {
        self.scheduler = s;
    }

    /// Mutable access to the controller application (e.g. firewall policy).
    pub fn app_mut(&mut self) -> &mut ShortestPathApp {
        &mut self.app
    }

    /// The current membership view (tests).
    pub fn view(&self) -> &ControlPlaneView {
        &self.view
    }

    /// The current group public data (tests: pk invariance).
    pub fn group(&self) -> &GroupPublic {
        &self.group
    }

    /// `true` while this controller participates in the control plane.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The pending-update tracker (watchdog / tests: drain checks).
    pub fn pending(&self) -> &PendingUpdates {
        &self.pending
    }

    /// Consensus liveness snapshot: `(view, delivered slots, undelivered
    /// submissions)`. `None` when the mode runs without consensus.
    pub fn consensus_status(&self) -> Option<(u64, u64, usize)> {
        self.replica
            .as_ref()
            .map(|r| (r.view(), r.delivered_count(), r.pending_len()))
    }

    fn build_replica(
        view: &ControlPlaneView,
        id: ControllerId,
        view_timeout_ticks: u32,
    ) -> Replica<OrderedOp> {
        let members: Vec<ControllerId> = view.members().collect();
        let pos = members
            .iter()
            .position(|&m| m == id)
            .expect("active controller is a member") as u32;
        Replica::new(
            ReplicaId(pos),
            bft::replica::BftConfig::new(members.len() as u32)
                .with_view_timeout(view_timeout_ticks),
        )
    }

    fn msg_id(&mut self) -> MsgId {
        self.msg_seq += 1;
        MsgId {
            origin: self.id.0,
            seq: self.msg_seq,
        }
    }

    fn members(&self) -> Vec<ControllerId> {
        self.view.members().collect()
    }

    fn is_lowest(&self) -> bool {
        self.view.aggregator() == self.id
    }

    fn uses_consensus(&self) -> bool {
        !matches!(self.shared.cfg.mode, Mode::Centralized)
    }

    fn node_of(&self, c: ControllerId) -> NodeId {
        self.shared.dir.controller(self.domain, c)
    }

    /// Applies a signature-verified acknowledgement: records it (and its
    /// WAL entry, first ack only), releases newly unblocked updates, and
    /// reports any own segment the ack drained upstream. Shared by the
    /// live `AckMsg` path and crash-recovery replay.
    fn apply_verified_ack(
        &mut self,
        ctx: &mut dyn Host<Net, Obs>,
        update: UpdateId,
        extra: SimDuration,
    ) {
        let fresh = !self.pending.is_acked(update);
        let ready = self.pending.ack(update, ctx.now());
        if fresh {
            self.log_record(&WalRecord::Acked(update));
        }
        for u in ready {
            self.send_update_delayed(ctx, u, extra);
        }
        // The ack may drain a watched own segment: report upstream.
        let mut drained: Vec<(EventId, u32)> = Vec::new();
        for (key, w) in self.seg_watch.iter_mut() {
            if key.0 == update.event
                && !w.sending
                && w.remaining.remove(&update)
                && w.remaining.is_empty()
            {
                drained.push(*key);
            }
        }
        for key in drained {
            self.start_segment_report(ctx, key);
        }
        self.arm_retry(ctx);
    }
}

impl Actor<Net, Obs> for ControllerActor {
    fn on_start(&mut self, ctx: &mut dyn Host<Net, Obs>) {
        // Crash recovery first: replay the snapshot + WAL through the real
        // handlers (muted), then resume live operation on recovered state.
        self.replay_recovered(ctx);
        if self.uses_consensus() {
            ctx.set_timer(TICK_PERIOD, TICK);
        }
        if let Some(hb) = self.shared.cfg.heartbeat {
            if self.active {
                ctx.set_timer(hb, HEARTBEAT);
            }
        }
        let now = ctx.now();
        for m in self.members() {
            if m != self.id {
                self.detector.track(m, now);
            }
        }
        if self.recovering {
            self.send_sync_request(ctx);
        }
        // Replay left re-admitted updates in flight: re-arm their retries.
        self.arm_retry(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn Host<Net, Obs>, token: TimerToken) {
        if token == TICK {
            if self.active && !self.in_phase_change && !self.recovering {
                if let Some(replica) = self.replica.as_mut() {
                    let outs = replica.on_tick();
                    self.route_outputs(ctx, outs);
                }
            }
            self.tick_recovery(ctx);
            self.maybe_snapshot(ctx);
            ctx.set_timer(TICK_PERIOD, TICK);
        } else if token == HEARTBEAT {
            if let Some(hb) = self.shared.cfg.heartbeat {
                if self.active {
                    let phase = self.view.phase();
                    for m in self.members() {
                        if m != self.id {
                            ctx.send(
                                self.node_of(m),
                                Net::Heartbeat {
                                    from: self.id,
                                    phase,
                                },
                            );
                        }
                    }
                    if !self.in_phase_change {
                        // Paper §4.3: removal is "proposed by a member that
                        // detects that the member should be removed".
                        let suspects = self.detector.suspects(ctx.now());
                        for s in suspects {
                            if s != self.id && self.view.contains(s) && self.view.len() > 4 {
                                self.submit_op(ctx, OrderedOp::RemoveController(s));
                            }
                        }
                    }
                }
                ctx.set_timer(hb, HEARTBEAT);
            }
        } else if token == RETRY {
            self.on_retry_timer(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Host<Net, Obs>, _from: NodeId, msg: Net) {
        match msg {
            Net::EventMsg(m) => self.on_event_msg(ctx, m, false),
            Net::ForwardedEvent(m) => self.on_event_msg(ctx, m, true),
            Net::Consensus { phase, from, msg } => {
                // While recovering, consensus traffic is dropped: the
                // remaining 2f replicas make progress without this one, and
                // it rejoins fast-forwarded after the snapshot transfer.
                if !self.active
                    || phase != self.view.phase()
                    || self.in_phase_change
                    || self.recovering
                {
                    return;
                }
                ctx.charge_cpu(self.shared.cfg.costs.consensus_msg);
                let members = self.members();
                let Some(pos) = members.iter().position(|&m| m == from) else {
                    return;
                };
                let Some(replica) = self.replica.as_mut() else {
                    return;
                };
                let outs = replica.handle(ReplicaId(pos as u32), *msg);
                self.route_outputs(ctx, outs);
            }
            Net::AckMsg(m) => {
                if !self.active {
                    return;
                }
                ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
                let mut extra = SimDuration::ZERO;
                if self.shared.cfg.mode.is_signed() {
                    // Verification latency rides on the released updates
                    // (parallelizable on the controller's cores).
                    extra = self.shared.cfg.costs.bls_verify;
                    if self.shared.real_crypto() {
                        let pk = self
                            .shared
                            .keys
                            .switch_pk
                            .get(&SwitchId(m.msg_id.origin));
                        let valid = pk
                            .map(|pk| m.verify(crate::runtime::labels::ACK, pk))
                            .unwrap_or(false);
                        if !valid {
                            return;
                        }
                    }
                }
                let body: AckBody = m.payload;
                self.apply_verified_ack(ctx, body.update, extra);
            }
            Net::UpdateNack(m) => self.on_update_nack(ctx, m),
            Net::SegmentApplied(m) => self.on_segment_applied(ctx, m),
            Net::BoundaryRelease(m) => self.on_boundary_release(ctx, m),
            Net::UpdateToAggregator(m) => self.on_update_to_aggregator(ctx, m),
            Net::PhasePartial(m) => self.on_phase_partial(ctx, m),
            Net::Heartbeat { from, .. } => {
                self.detector.heartbeat(from, ctx.now());
            }
            Net::Reshare { phase, dealing } => {
                self.reshare_buf.entry(phase).or_default().push(dealing);
                self.try_finalize_reshare(ctx);
            }
            Net::StateSync { view } => self.on_state_sync(ctx, view),
            Net::SyncRequest { domain, from, have } => {
                self.on_sync_request(ctx, domain, from, have)
            }
            Net::SyncReply { from, frontier: _, ops, acked, signers } => {
                self.on_sync_reply(ctx, from, ops, acked, signers)
            }
            Net::MembershipCmd(op) => {
                let allowed = match op {
                    OrderedOp::AddController(_) => self.id == self.view.bootstrap(),
                    OrderedOp::RemoveController(_) => true,
                    OrderedOp::Event(_) => false,
                };
                if allowed && !self.recovering {
                    self.submit_op(ctx, op);
                }
            }
            // Switch-directed traffic is ignored defensively.
            _ => {}
        }
    }
}
