//! The controller protocol runtime (paper Figs. 7–8 and §5.1).
//!
//! Each controller actor embeds: a PBFT replica (event agreement), the
//! pluggable network application and update scheduler, the dependency-driven
//! pending-update tracker, the membership view with phase-change/resharing
//! logic, the optional aggregator role, and the heartbeat failure detector.

use crate::config::{Aggregation, Mode};
use crate::msg::{AckBody, NackBody, Net, OrderedOp, PhaseInfo, ReleaseBody, SegmentBody};
use crate::obs::Obs;
use crate::runtime::{fake_group, labels, Shared};
use bft::message::{BftPayload, ReplicaId};
use bft::replica::{BftConfig, Output, Replica};
use blscrypto::bls::{KeyShare, PartialSignature, SecretKey};
use blscrypto::dkg::{DkgConfig, GroupPublic};
use blscrypto::reshare::{deal_reshare_to, finalize_reshare, ReshareDealing};
use controller::app::{NetworkApp, ShortestPathApp};
use controller::failure::HeartbeatDetector;
use controller::membership::ControlPlaneView;
use controller::pending::{PendingUpdates, RetryPolicy};
use controller::scheduler::{
    domain_segments, ReversePathScheduler, ScheduledUpdate, UpdateScheduler,
};
use simnet::node::{Actor, Context, NodeId, TimerToken};
use simnet::time::{SimDuration, SimTime};
use southbound::envelope::{MsgId, QuorumSigned, ShareSigned, Signed};
use southbound::types::{
    ControllerId, DomainId, Event, EventId, EventKind, NetworkUpdate, Phase, SwitchId,
    UpdateId,
};
use std::collections::{BTreeMap, BTreeSet};
use substrate::collections::{DetMap, DetSet};
use std::sync::Arc;

const TICK: TimerToken = TimerToken(1);
const HEARTBEAT: TimerToken = TimerToken(2);
const RETRY: TimerToken = TimerToken(3);
const TICK_PERIOD: SimDuration = SimDuration::from_millis(5);

/// An aggregation bucket at the aggregator controller.
#[derive(Clone, Debug)]
struct AggBucket {
    update: NetworkUpdate,
    phase: Phase,
    partials: BTreeMap<u32, PartialSignature>,
    /// The relayed quorum signature, kept so a share retransmission after
    /// the relay can trigger a re-send (the switch evidently lost it).
    relayed: Option<QuorumSigned<NetworkUpdate>>,
}

/// State tracked while a membership change (and its reshare) is in flight.
struct PendingReshare {
    phase: Phase,
    need: usize,
    old_group: GroupPublic,
    new_cfg: DkgConfig,
}

/// Synthetic dependency ids standing for "a foreign domain's path segment
/// has been applied". Real per-event sequence numbers are tiny, so the top
/// of the `u32` range is free for barriers.
const BARRIER_SEQ_BASE: u32 = 0xFFFF_0000;

fn barrier_id(event: EventId, segment: u32) -> UpdateId {
    UpdateId {
        event,
        seq: BARRIER_SEQ_BASE + segment,
    }
}

/// What the upstream side of one cross-domain barrier still expects. Set
/// when local event processing registers the dependency; `SegmentApplied`
/// reports may legitimately arrive earlier and accumulate in
/// [`BarrierState::signers`] until then.
struct BarrierExpect {
    /// The domain whose segment must apply before the barrier releases.
    downstream: DomainId,
    /// Distinct downstream reporters required.
    quorum: usize,
    /// The event, kept for re-forwarding if the downstream domain went
    /// quiet (its copy of the forwarded event may have been lost).
    event: Event,
    /// Re-forward attempts spent.
    attempts: u32,
    /// Next re-forward deadline.
    next_due: SimTime,
}

/// Upstream half of the cross-domain ordering handshake: collects
/// `SegmentApplied` signers for one `(event, segment)` until a quorum of
/// the downstream domain has reported, then acks the barrier id.
struct BarrierState {
    /// Distinct `(domain, controller)` reporters seen (signature-checked).
    signers: DetSet<(DomainId, u32)>,
    /// Release condition, once our own schedule registered the dependency.
    expected: Option<BarrierExpect>,
    /// Set once released; late duplicates are receipted but change nothing.
    released: bool,
}

impl BarrierState {
    fn new() -> Self {
        BarrierState {
            signers: DetSet::new(),
            expected: None,
            released: false,
        }
    }
}

/// Downstream half of the handshake: waits until every update of an own
/// segment is switch-acked, then reports `SegmentApplied` to each upstream
/// controller until all of them receipted (or the retry budget is spent).
struct SegWatch {
    /// Own-segment updates not yet switch-acked.
    remaining: DetSet<UpdateId>,
    /// Domains holding a barrier on this segment.
    upstreams: Vec<DomainId>,
    /// `(domain, controller)` targets that have not receipted yet.
    pending_receipts: DetSet<(DomainId, u32)>,
    /// Report attempts spent.
    attempts: u32,
    /// Next retransmission deadline.
    next_due: SimTime,
    /// Set once the first report went out.
    sending: bool,
}

/// The controller actor.
pub struct ControllerActor {
    shared: Arc<Shared>,
    domain: DomainId,
    id: ControllerId,
    identity: Option<SecretKey>,
    share: Option<KeyShare>,
    group: GroupPublic,
    view: ControlPlaneView,
    active: bool,
    replica: Option<Replica<OrderedOp>>,
    app: ShortestPathApp,
    scheduler: Box<dyn UpdateScheduler>,
    pending: PendingUpdates,
    seen_events: DetSet<EventId>,
    forwarded_events: DetSet<EventId>,
    unprocessed: BTreeMap<[u8; 32], OrderedOp>,
    queued_events: Vec<Event>,
    in_phase_change: bool,
    pending_reshare: Option<PendingReshare>,
    reshare_buf: BTreeMap<Phase, Vec<ReshareDealing>>,
    agg_buckets: DetMap<(UpdateId, Phase), Vec<AggBucket>>,
    phase_partials: BTreeMap<Phase, BTreeMap<u32, PartialSignature>>,
    remote_members: BTreeMap<DomainId, Vec<ControllerId>>,
    detector: HeartbeatDetector,
    barriers: DetMap<(EventId, u32), BarrierState>,
    seg_watch: DetMap<(EventId, u32), SegWatch>,
    msg_seq: u64,
    retry_armed: bool,
}

impl ControllerActor {
    /// Builds a controller.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shared: Arc<Shared>,
        domain: DomainId,
        id: ControllerId,
        identity: Option<SecretKey>,
        share: Option<KeyShare>,
        view: ControlPlaneView,
        active: bool,
    ) -> Self {
        let group = shared.keys.domains[&domain].group.clone();
        let replica =
            active.then(|| Self::build_replica(&view, id, shared.cfg.view_timeout_ticks));
        let rel = &shared.cfg.reliability;
        let policy = RetryPolicy {
            base: rel.retry_base,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.retry_budget } else { 0 },
            // Per-controller jitter stream: replicas must not retransmit in
            // lockstep or every retry wave collides at the switch.
            jitter_seed: shared.cfg.seed
                ^ (u64::from(domain.0) << 32)
                ^ u64::from(id.0).rotate_left(13),
        };
        let remote_members = shared
            .dir
            .initial_members
            .iter()
            .map(|(d, ms)| (*d, ms.clone()))
            .collect();
        let detector = HeartbeatDetector::new(
            shared
                .cfg
                .heartbeat
                .map(|p| p.saturating_mul(4))
                .unwrap_or(SimDuration::from_millis(500)),
        );
        ControllerActor {
            shared,
            domain,
            id,
            identity,
            share,
            group,
            view,
            active,
            replica,
            app: ShortestPathApp::new(),
            scheduler: Box::new(ReversePathScheduler),
            pending: PendingUpdates::new().with_policy(policy),
            seen_events: DetSet::new(),
            forwarded_events: DetSet::new(),
            unprocessed: BTreeMap::new(),
            queued_events: Vec::new(),
            in_phase_change: false,
            pending_reshare: None,
            reshare_buf: BTreeMap::new(),
            agg_buckets: DetMap::new(),
            phase_partials: BTreeMap::new(),
            remote_members,
            detector,
            barriers: DetMap::new(),
            seg_watch: DetMap::new(),
            msg_seq: 0,
            retry_armed: false,
        }
    }

    /// Replaces the update scheduler (pluggability seam, paper §3.1).
    pub fn set_scheduler(&mut self, s: Box<dyn UpdateScheduler>) {
        self.scheduler = s;
    }

    /// Mutable access to the controller application (e.g. firewall policy).
    pub fn app_mut(&mut self) -> &mut ShortestPathApp {
        &mut self.app
    }

    /// The current membership view (tests).
    pub fn view(&self) -> &ControlPlaneView {
        &self.view
    }

    /// The current group public data (tests: pk invariance).
    pub fn group(&self) -> &GroupPublic {
        &self.group
    }

    /// `true` while this controller participates in the control plane.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The pending-update tracker (watchdog / tests: drain checks).
    pub fn pending(&self) -> &PendingUpdates {
        &self.pending
    }

    /// Consensus liveness snapshot: `(view, delivered slots, undelivered
    /// submissions)`. `None` when the mode runs without consensus.
    pub fn consensus_status(&self) -> Option<(u64, u64, usize)> {
        self.replica
            .as_ref()
            .map(|r| (r.view(), r.delivered_count(), r.pending_len()))
    }

    fn build_replica(
        view: &ControlPlaneView,
        id: ControllerId,
        view_timeout_ticks: u32,
    ) -> Replica<OrderedOp> {
        let members: Vec<ControllerId> = view.members().collect();
        let pos = members
            .iter()
            .position(|&m| m == id)
            .expect("active controller is a member") as u32;
        Replica::new(
            ReplicaId(pos),
            BftConfig::new(members.len() as u32).with_view_timeout(view_timeout_ticks),
        )
    }

    fn msg_id(&mut self) -> MsgId {
        self.msg_seq += 1;
        MsgId {
            origin: self.id.0,
            seq: self.msg_seq,
        }
    }

    fn members(&self) -> Vec<ControllerId> {
        self.view.members().collect()
    }

    fn is_lowest(&self) -> bool {
        self.view.aggregator() == self.id
    }

    fn uses_consensus(&self) -> bool {
        !matches!(self.shared.cfg.mode, Mode::Centralized)
    }

    fn node_of(&self, c: ControllerId) -> NodeId {
        self.shared.dir.controller(self.domain, c)
    }

    // ----- consensus plumbing -------------------------------------------

    fn route_outputs(&mut self, ctx: &mut Context<'_, Net, Obs>, outs: Vec<Output<OrderedOp>>) {
        let members = self.members();
        let phase = self.view.phase();
        for out in outs {
            match out {
                Output::Send(rid, msg) => {
                    let Some(&target) = members.get(rid.0 as usize) else {
                        continue;
                    };
                    if target == self.id {
                        continue;
                    }
                    ctx.send_delayed(
                        self.node_of(target),
                        Net::Consensus {
                            phase,
                            from: self.id,
                            msg: Box::new(msg),
                        },
                        self.shared.cfg.costs.consensus_wire,
                    );
                }
                Output::Broadcast(msg) => {
                    for &m in &members {
                        if m == self.id {
                            continue;
                        }
                        ctx.send_delayed(
                            self.node_of(m),
                            Net::Consensus {
                                phase,
                                from: self.id,
                                msg: Box::new(msg.clone()),
                            },
                            self.shared.cfg.costs.consensus_wire,
                        );
                    }
                }
                Output::Deliver(_, op) => self.on_deliver(ctx, op),
            }
        }
    }

    fn submit_op(&mut self, ctx: &mut Context<'_, Net, Obs>, op: OrderedOp) {
        if let OrderedOp::Event(e) = &op {
            if self.seen_events.contains(&e.id) {
                return;
            }
        }
        if !self.uses_consensus() {
            self.on_deliver(ctx, op);
            return;
        }
        self.unprocessed.insert(op.digest(), op.clone());
        let Some(replica) = self.replica.as_mut() else {
            return;
        };
        let outs = replica.submit(op);
        self.route_outputs(ctx, outs);
    }

    // ----- event processing ---------------------------------------------

    fn on_deliver(&mut self, ctx: &mut Context<'_, Net, Obs>, op: OrderedOp) {
        self.unprocessed.remove(&op.digest());
        match op {
            OrderedOp::Event(event) => self.process_event(ctx, event),
            OrderedOp::AddController(c) => self.start_phase_change(ctx, true, c),
            OrderedOp::RemoveController(c) => self.start_phase_change(ctx, false, c),
        }
    }

    fn process_event(&mut self, ctx: &mut Context<'_, Net, Obs>, event: Event) {
        if !self.seen_events.insert(event.id) {
            return;
        }
        if self.shared.cfg.trace_deliveries {
            ctx.observe(Obs::EventDelivered {
                domain: self.domain,
                controller: self.id.0,
                event: event.id,
            });
        }
        if self.is_lowest() {
            ctx.observe(Obs::EventProcessed {
                domain: self.domain,
                event: event.id,
            });
        }
        // Cross-domain bookkeeping events.
        if let EventKind::MembershipChanged {
            domain,
            controller,
            added,
        } = event.kind
        {
            let members = self.remote_members.entry(domain).or_default();
            if added {
                if !members.contains(&controller) {
                    members.push(controller);
                    members.sort();
                }
            } else {
                members.retain(|&c| c != controller);
            }
            return;
        }
        // Forward to other affected domains (paper §4.1). Normally already
        // done at event receipt (so the domains' consensus rounds overlap);
        // this is the fallback for events that reached consensus without
        // passing through this controller's inbox — e.g. after the
        // forwarding aggregator crashed before forwarding.
        if !event.forwarded && self.is_lowest() {
            self.forward_event(ctx, &event);
        }
        // Compute, schedule and release this domain's updates. The schedule
        // is computed over the *full* update list so dependencies that cross
        // domain boundaries survive the projection onto this domain; foreign
        // dependencies become barrier ids released by the cross-domain
        // handshake (DESIGN.md §3).
        let all = self.app.handle_event(&event, &self.shared.topo);
        let own: Vec<NetworkUpdate> = all
            .iter()
            .filter(|u| {
                self.shared.dir.domain_of_switch.get(&u.switch) == Some(&self.domain)
            })
            .copied()
            .collect();
        if own.is_empty() {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.event_process);
        let schedule = if !self.shared.cfg.cross_domain_handshake || own.len() == all.len()
        {
            self.scheduler.schedule(&own)
        } else {
            self.cross_domain_schedule(ctx, &event, &all)
        };
        let ready = self.pending.admit(schedule, ctx.now());
        let mut pipeline = self.shared.cfg.costs.event_pipeline;
        if self.shared.cfg.mode.is_cicero() {
            pipeline += self.shared.cfg.costs.bls_verify;
        }
        for u in ready {
            self.send_update_delayed(ctx, u, pipeline);
        }
        self.arm_retry(ctx);
    }

    /// Forwards `event` to the first member of every other affected domain,
    /// at most once per event (the lowest live controller forwards, to
    /// avoid n copies).
    fn forward_event(&mut self, ctx: &mut Context<'_, Net, Obs>, event: &Event) {
        if !self.forwarded_events.insert(event.id) {
            return;
        }
        let affected = self
            .shared
            .policy
            .affected_domains(event, &self.shared.topo);
        for d in affected {
            if d == self.domain {
                continue;
            }
            let Some(target) = self
                .remote_members
                .get(&d)
                .and_then(|ms| ms.first().copied())
            else {
                continue;
            };
            let fwd = Event {
                forwarded: true,
                ..*event
            };
            let signed = self.sign_forward(ctx, fwd);
            ctx.send(
                self.shared.dir.controller(d, target),
                Net::ForwardedEvent(signed),
            );
        }
    }

    fn sign_forward(&mut self, ctx: &mut Context<'_, Net, Obs>, event: Event) -> Signed<Event> {
        let phase = self.view.phase();
        let msg_id = self.msg_id();
        if self.shared.cfg.mode.is_cicero() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        }
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let key = self.identity.as_ref().expect("real mode identity");
            Signed::sign(labels::FORWARD, event, phase, msg_id, key)
        } else {
            Signed {
                payload: event,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        }
    }

    // ----- cross-domain ordering handshake --------------------------------

    /// Projects the full-event schedule onto this domain. Dependencies on
    /// foreign updates are rewritten to per-segment barrier ids (acked when
    /// a quorum of the owning domain reports the segment applied), and
    /// watches are registered for own segments that foreign updates depend
    /// on so this controller reports them upstream once they drain.
    fn cross_domain_schedule(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        event: &Event,
        all: &[NetworkUpdate],
    ) -> Vec<ScheduledUpdate> {
        let full = self.scheduler.schedule(all);
        let segs = domain_segments(all, |s| {
            self.shared.dir.domain_of_switch.get(&s).copied()
        });
        let mut seg_of: BTreeMap<UpdateId, u32> = BTreeMap::new();
        for seg in &segs {
            for &id in &seg.updates {
                seg_of.insert(id, seg.index);
            }
        }
        let own_ids: DetSet<UpdateId> = all
            .iter()
            .filter(|u| {
                self.shared.dir.domain_of_switch.get(&u.switch) == Some(&self.domain)
            })
            .map(|u| u.id)
            .collect();
        // Foreign segments our updates depend on → barriers to hold, and
        // own segments foreign updates depend on → watches to report.
        let mut barrier_deps: BTreeMap<u32, DomainId> = BTreeMap::new();
        let mut watched: BTreeMap<u32, DetSet<DomainId>> = BTreeMap::new();
        let mut projected = Vec::new();
        for s in &full {
            let sd = self
                .shared
                .dir
                .domain_of_switch
                .get(&s.update.switch)
                .copied();
            if sd == Some(self.domain) {
                let mut deps = BTreeSet::new();
                for d in &s.deps {
                    if own_ids.contains(d) {
                        deps.insert(*d);
                    } else if let Some(&k) = seg_of.get(d) {
                        deps.insert(barrier_id(event.id, k));
                        barrier_deps.insert(k, segs[k as usize].domain);
                    }
                }
                projected.push(ScheduledUpdate {
                    update: s.update,
                    deps,
                });
            } else if let Some(upstream) = sd {
                for d in &s.deps {
                    if let Some(&k) = seg_of.get(d) {
                        if segs[k as usize].domain == self.domain {
                            watched.entry(k).or_default().insert(upstream);
                        }
                    }
                }
            }
        }
        let now = ctx.now();
        for (k, downstream) in barrier_deps {
            let quorum = self.downstream_quorum(downstream);
            let due = now + self.forward_policy().backoff(barrier_id(event.id, k), 1);
            let st = self
                .barriers
                .entry((event.id, k))
                .or_insert_with(BarrierState::new);
            if st.expected.is_none() && !st.released {
                st.expected = Some(BarrierExpect {
                    downstream,
                    quorum,
                    event: Event {
                        forwarded: true,
                        ..*event
                    },
                    attempts: 0,
                    next_due: due,
                });
            }
            self.check_barrier_release(ctx, (event.id, k));
        }
        for (k, ups) in watched {
            let remaining: DetSet<UpdateId> = segs[k as usize]
                .updates
                .iter()
                .copied()
                .filter(|&id| !self.pending.is_acked(id))
                .collect();
            let drained = remaining.is_empty();
            self.seg_watch.insert(
                (event.id, k),
                SegWatch {
                    remaining,
                    upstreams: ups.into_iter().collect(),
                    pending_receipts: DetSet::new(),
                    attempts: 0,
                    next_due: now,
                    sending: false,
                },
            );
            if drained {
                self.start_segment_report(ctx, (event.id, k));
            }
        }
        self.arm_retry(ctx);
        projected
    }

    /// Distinct downstream reporters required before a barrier releases:
    /// enough that at least one is honest under the mode's fault model.
    fn downstream_quorum(&self, d: DomainId) -> usize {
        if self.shared.cfg.mode.is_cicero() {
            let n = self.remote_members.get(&d).map(|m| m.len()).unwrap_or(1);
            (n.saturating_sub(1)) / 3 + 1
        } else {
            // Centralized / crash-tolerant controllers never equivocate in
            // the fault model; a single report suffices.
            1
        }
    }

    /// Retry policy for barrier re-forwards (event-sized messages).
    fn forward_policy(&self) -> RetryPolicy {
        let rel = &self.shared.cfg.reliability;
        RetryPolicy {
            base: rel.event_retry_base,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.event_retry_budget } else { 0 },
            jitter_seed: self.shared.cfg.seed
                ^ (u64::from(self.domain.0) << 16)
                ^ u64::from(self.id.0).rotate_left(29),
        }
    }

    /// Retry policy for segment-applied reports (controller-to-controller).
    fn segment_policy(&self) -> RetryPolicy {
        let rel = &self.shared.cfg.reliability;
        RetryPolicy {
            base: rel.retry_base,
            max_backoff: rel.retry_max_backoff,
            budget: if rel.enabled { rel.retry_budget } else { 0 },
            jitter_seed: self.shared.cfg.seed
                ^ (u64::from(self.domain.0) << 40)
                ^ u64::from(self.id.0).rotate_left(47),
        }
    }

    /// Acks the barrier id (releasing held boundary updates) once a quorum
    /// of the expected downstream domain has reported its segment applied.
    fn check_barrier_release(&mut self, ctx: &mut Context<'_, Net, Obs>, key: (EventId, u32)) {
        {
            let Some(st) = self.barriers.get(&key) else {
                return;
            };
            if st.released {
                return;
            }
            let Some(exp) = st.expected.as_ref() else {
                return;
            };
            let have = st
                .signers
                .iter()
                .filter(|(d, _)| *d == exp.downstream)
                .count();
            if have < exp.quorum {
                return;
            }
        }
        if let Some(st) = self.barriers.get_mut(&key) {
            st.released = true;
        }
        ctx.observe(Obs::BoundaryReleased {
            domain: self.domain,
            controller: self.id.0,
            event: key.0,
            segment: key.1,
        });
        let mut extra = SimDuration::ZERO;
        if self.shared.cfg.mode.is_cicero() {
            extra = self.shared.cfg.costs.bls_verify;
        }
        let ready = self.pending.ack(barrier_id(key.0, key.1), ctx.now());
        for u in ready {
            self.send_update_delayed(ctx, u, extra);
        }
        self.arm_retry(ctx);
    }

    /// First transmission of a drained segment's report to every controller
    /// of every upstream domain holding a barrier on it.
    fn start_segment_report(&mut self, ctx: &mut Context<'_, Net, Obs>, key: (EventId, u32)) {
        let targets: Vec<(DomainId, ControllerId)> = {
            let Some(w) = self.seg_watch.get(&key) else {
                return;
            };
            if w.sending {
                return;
            }
            w.upstreams
                .iter()
                .flat_map(|&d| {
                    self.remote_members
                        .get(&d)
                        .into_iter()
                        .flatten()
                        .map(move |&c| (d, c))
                })
                .collect()
        };
        let due = ctx.now() + self.segment_policy().backoff(barrier_id(key.0, key.1), 1);
        let body = SegmentBody {
            event: key.0,
            segment: key.1,
            domain: self.domain,
            controller: self.id,
        };
        let signed = self.sign_segment(ctx, body);
        if let Some(w) = self.seg_watch.get_mut(&key) {
            w.sending = true;
            w.attempts = 1;
            w.next_due = due;
            w.pending_receipts = targets.iter().map(|&(d, c)| (d, c.0)).collect();
        }
        for (d, c) in targets {
            let Some(&node) = self.shared.dir.controller_node.get(&(d, c)) else {
                continue;
            };
            ctx.send(node, Net::SegmentApplied(signed.clone()));
        }
        ctx.observe(Obs::SegmentReported {
            domain: self.domain,
            controller: self.id.0,
            event: key.0,
            segment: key.1,
        });
        self.arm_retry(ctx);
    }

    fn sign_segment(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        body: SegmentBody,
    ) -> Signed<SegmentBody> {
        let phase = self.view.phase();
        let msg_id = self.msg_id();
        if self.shared.cfg.mode.is_cicero() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        }
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let key = self.identity.as_ref().expect("real mode identity");
            Signed::sign(labels::SEGMENT, body, phase, msg_id, key)
        } else {
            Signed {
                payload: body,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        }
    }

    fn sign_release(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        body: ReleaseBody,
    ) -> Signed<ReleaseBody> {
        let phase = self.view.phase();
        let msg_id = self.msg_id();
        if self.shared.cfg.mode.is_cicero() {
            ctx.charge_cpu(self.shared.cfg.costs.event_sign);
        }
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let key = self.identity.as_ref().expect("real mode identity");
            Signed::sign(labels::RELEASE, body, phase, msg_id, key)
        } else {
            Signed {
                payload: body,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        }
    }

    /// Handles a downstream controller's segment-applied report.
    fn on_segment_applied(&mut self, ctx: &mut Context<'_, Net, Obs>, m: Signed<SegmentBody>) {
        if !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        let body = m.payload;
        if body.controller != ControllerId(m.msg_id.origin) {
            return;
        }
        if self.shared.cfg.mode.is_cicero() && self.shared.real_crypto() {
            let pk = self
                .shared
                .keys
                .controller_pk
                .get(&(body.domain, body.controller));
            let valid = pk.map(|pk| m.verify(labels::SEGMENT, pk)).unwrap_or(false);
            if !valid {
                return;
            }
        }
        // Receipt unconditionally — it only means "stop retransmitting to
        // me", never "released" — so duplicates and reports arriving before
        // our own barrier exists still silence the downstream sender.
        let receipt = ReleaseBody {
            event: body.event,
            segment: body.segment,
            domain: self.domain,
            controller: self.id,
        };
        let signed = self.sign_release(ctx, receipt);
        if let Some(&node) = self
            .shared
            .dir
            .controller_node
            .get(&(body.domain, body.controller))
        {
            ctx.send(node, Net::BoundaryRelease(signed));
        }
        let st = self
            .barriers
            .entry((body.event, body.segment))
            .or_insert_with(BarrierState::new);
        st.signers.insert((body.domain, body.controller.0));
        self.check_barrier_release(ctx, (body.event, body.segment));
    }

    /// Handles an upstream controller's receipt for our segment report.
    fn on_boundary_release(&mut self, ctx: &mut Context<'_, Net, Obs>, m: Signed<ReleaseBody>) {
        if !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        let body = m.payload;
        if body.controller != ControllerId(m.msg_id.origin) {
            return;
        }
        if self.shared.cfg.mode.is_cicero() && self.shared.real_crypto() {
            let pk = self
                .shared
                .keys
                .controller_pk
                .get(&(body.domain, body.controller));
            let valid = pk.map(|pk| m.verify(labels::RELEASE, pk)).unwrap_or(false);
            if !valid {
                return;
            }
        }
        let key = (body.event, body.segment);
        let done = match self.seg_watch.get_mut(&key) {
            Some(w) => {
                w.pending_receipts.remove(&(body.domain, body.controller.0));
                w.sending && w.pending_receipts.is_empty()
            }
            None => false,
        };
        if done {
            self.seg_watch.remove(&key);
        }
    }

    /// Earliest handshake retransmission deadline: segment reports still
    /// awaiting receipts, and (on the forwarding controller) barriers whose
    /// downstream domain may have lost the forwarded event.
    fn handshake_next_due(&self) -> Option<SimTime> {
        let mut due: Option<SimTime> = None;
        let mut fold = |t: SimTime| {
            due = Some(match due {
                Some(d) if d <= t => d,
                _ => t,
            });
        };
        for w in self.seg_watch.values() {
            if w.sending && !w.pending_receipts.is_empty() {
                fold(w.next_due);
            }
        }
        if self.is_lowest() {
            for st in self.barriers.values() {
                if st.released {
                    continue;
                }
                if let Some(exp) = st.expected.as_ref() {
                    fold(exp.next_due);
                }
            }
        }
        due
    }

    /// Retransmits overdue handshake traffic (driven by the retry timer).
    fn sweep_handshake(&mut self, ctx: &mut Context<'_, Net, Obs>) {
        let now = ctx.now();
        let seg_policy = self.segment_policy();
        let mut resend: Vec<(EventId, u32)> = Vec::new();
        let mut give_up: Vec<(EventId, u32)> = Vec::new();
        for (key, w) in self.seg_watch.iter_mut() {
            if !w.sending || w.pending_receipts.is_empty() || w.next_due > now {
                continue;
            }
            if w.attempts >= seg_policy.budget {
                give_up.push(*key);
                continue;
            }
            w.attempts += 1;
            w.next_due = now + seg_policy.backoff(barrier_id(key.0, key.1), w.attempts);
            resend.push(*key);
        }
        for key in give_up {
            self.seg_watch.remove(&key);
        }
        for key in resend {
            self.resend_segment_report(ctx, key);
        }
        // Barriers still waiting on a quorum: the forwarded event (sent to
        // one downstream member) may have been lost, or its target crashed.
        // Re-forward to every member of the downstream domain; `seen_events`
        // dedups over there. Stamp our own domain as origin so receivers
        // verify against the actual forwarder's key.
        if self.is_lowest() {
            let fwd_policy = self.forward_policy();
            let mut forward: Vec<(EventId, DomainId, Event, u32)> = Vec::new();
            for (key, st) in self.barriers.iter_mut() {
                if st.released {
                    continue;
                }
                let Some(exp) = st.expected.as_mut() else {
                    continue;
                };
                if exp.next_due > now || exp.attempts >= fwd_policy.budget {
                    continue;
                }
                exp.attempts += 1;
                exp.next_due = now + fwd_policy.backoff(barrier_id(key.0, key.1), exp.attempts);
                forward.push((key.0, exp.downstream, exp.event, exp.attempts));
            }
            for (event_id, d, event, attempt) in forward {
                let members = self.remote_members.get(&d).cloned().unwrap_or_default();
                let refwd = Event {
                    origin: self.domain,
                    ..event
                };
                for c in members {
                    let Some(&node) = self.shared.dir.controller_node.get(&(d, c)) else {
                        continue;
                    };
                    let signed = self.sign_forward(ctx, refwd);
                    ctx.send(node, Net::ForwardedEvent(signed));
                }
                ctx.observe(Obs::ForwardRetransmitted {
                    domain: self.domain,
                    controller: self.id.0,
                    event: event_id,
                    attempt,
                });
            }
        }
    }

    /// Retransmits a segment report to the targets that have not receipted.
    fn resend_segment_report(&mut self, ctx: &mut Context<'_, Net, Obs>, key: (EventId, u32)) {
        let (targets, attempt) = {
            let Some(w) = self.seg_watch.get(&key) else {
                return;
            };
            let t: Vec<(DomainId, u32)> = w.pending_receipts.iter().copied().collect();
            (t, w.attempts)
        };
        let body = SegmentBody {
            event: key.0,
            segment: key.1,
            domain: self.domain,
            controller: self.id,
        };
        let signed = self.sign_segment(ctx, body);
        for (d, c) in targets {
            let Some(&node) = self
                .shared
                .dir
                .controller_node
                .get(&(d, ControllerId(c)))
            else {
                continue;
            };
            ctx.send(node, Net::SegmentApplied(signed.clone()));
        }
        ctx.observe(Obs::SegmentRetransmitted {
            domain: self.domain,
            controller: self.id.0,
            event: key.0,
            segment: key.1,
            attempt,
        });
    }

    fn send_update_delayed(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        update: NetworkUpdate,
        extra: SimDuration,
    ) {
        let switch_node = self.shared.dir.switch(update.switch);
        match self.shared.cfg.mode {
            Mode::Centralized | Mode::CrashTolerant => {
                ctx.send_delayed(
                    switch_node,
                    Net::UpdatePlain {
                        update,
                        from: self.id,
                    },
                    extra,
                );
            }
            Mode::Cicero { aggregation } => {
                let sign = self.shared.cfg.costs.update_sign;
                ctx.charge_cpu(SimDuration::from_nanos(sign.as_nanos() / 3));
                let extra = extra + sign;
                let phase = self.view.phase();
                let msg_id = self.msg_id();
                let msg = if self.shared.real_crypto() {
                    let share = self.share.as_ref().expect("real mode share");
                    ShareSigned::sign(labels::UPDATE, update, phase, msg_id, share)
                } else {
                    ShareSigned {
                        payload: update,
                        phase,
                        msg_id,
                        partial: PartialSignature {
                            index: self.id.0,
                            sig: self.shared.keys.dummy.0,
                        },
                    }
                };
                match aggregation {
                    Aggregation::Switch => {
                        ctx.send_delayed(switch_node, Net::UpdateMsg(msg), extra)
                    }
                    Aggregation::Controller => {
                        let agg = self.view.aggregator();
                        ctx.send_delayed(
                            self.node_of(agg),
                            Net::UpdateToAggregator(msg),
                            extra,
                        );
                    }
                }
            }
        }
    }

    // ----- aggregator role ------------------------------------------------

    fn on_update_to_aggregator(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        msg: ShareSigned<NetworkUpdate>,
    ) {
        if !self.is_lowest() || !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.aggregator_msg);
        if msg.phase != self.view.phase() {
            return;
        }
        let key = (msg.payload.id, msg.phase);
        let quorum = self.view.quorum();
        let buckets = self.agg_buckets.entry(key).or_default();
        let bucket = match buckets.iter_mut().find(|b| b.update == msg.payload) {
            Some(b) => b,
            None => {
                buckets.push(AggBucket {
                    update: msg.payload,
                    phase: msg.phase,
                    partials: BTreeMap::new(),
                    relayed: None,
                });
                buckets.last_mut().expect("just pushed")
            }
        };
        let fresh = bucket.partials.insert(msg.partial.index, msg.partial).is_none();
        if let Some(out) = &bucket.relayed {
            // Already relayed: a *retransmitted* share means the sending
            // controller has not seen an ack, so the switch probably lost
            // the aggregated update — relay it again.
            if !fresh {
                ctx.send_delayed(
                    self.shared.dir.switch(bucket.update.switch),
                    Net::UpdateAggregated(out.clone()),
                    self.shared.cfg.costs.aggregator_delay,
                );
            }
            return;
        }
        if bucket.partials.len() < quorum {
            return;
        }
        let partials: Vec<PartialSignature> = bucket.partials.values().copied().collect();
        let update = bucket.update;
        let phase = bucket.phase;
        let msg_id = self.msg_id();
        let out = if self.shared.real_crypto() {
            match QuorumSigned::aggregate(update, phase, msg_id, &partials, quorum - 1) {
                Ok(q) => q,
                Err(_) => return,
            }
        } else {
            QuorumSigned {
                payload: update,
                phase,
                msg_id,
                signature: self.shared.keys.dummy,
            }
        };
        if let Some(b) = self
            .agg_buckets
            .get_mut(&key)
            .and_then(|bs| bs.iter_mut().find(|b| b.update == update))
        {
            b.relayed = Some(out.clone());
        }
        ctx.send_delayed(
            self.shared.dir.switch(update.switch),
            Net::UpdateAggregated(out),
            self.shared.cfg.costs.aggregator_delay,
        );
    }

    // ----- reliable delivery (retransmission + re-sync) -------------------

    /// Arms the retry timer for the earliest in-flight deadline. One timer
    /// is outstanding at a time; it re-arms itself from `on_timer`.
    fn arm_retry(&mut self, ctx: &mut Context<'_, Net, Obs>) {
        if self.retry_armed || !self.shared.cfg.reliability.enabled {
            return;
        }
        let due = match (self.pending.next_due(), self.handshake_next_due()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let Some(due) = due else {
            return;
        };
        ctx.set_timer(due.since(ctx.now()), RETRY);
        self.retry_armed = true;
    }

    fn on_retry_timer(&mut self, ctx: &mut Context<'_, Net, Obs>) {
        self.retry_armed = false;
        if !self.active {
            return;
        }
        let batch = self.pending.due_retries(ctx.now());
        for (u, attempt) in batch.resend {
            ctx.observe(Obs::UpdateRetransmitted {
                domain: self.domain,
                controller: self.id.0,
                update: u.id,
                attempt,
            });
            self.send_update_delayed(ctx, u, SimDuration::ZERO);
        }
        for id in batch.failed {
            ctx.observe(Obs::UpdateRetryExhausted {
                domain: self.domain,
                controller: self.id.0,
                update: id,
            });
        }
        self.sweep_handshake(ctx);
        self.arm_retry(ctx);
    }

    /// Handles a switch NACK: re-send the signed update if we still hold it
    /// (in flight, or acknowledged-by-quorum but missed by this switch).
    fn on_update_nack(&mut self, ctx: &mut Context<'_, Net, Obs>, m: Signed<NackBody>) {
        if !self.active || !self.shared.cfg.reliability.enabled {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        if self.shared.cfg.mode.is_cicero() && self.shared.real_crypto() {
            let pk = self.shared.keys.switch_pk.get(&SwitchId(m.msg_id.origin));
            let valid = pk.map(|pk| m.verify(labels::NACK, pk)).unwrap_or(false);
            if !valid {
                return;
            }
        }
        let body: NackBody = m.payload;
        if body.switch != SwitchId(m.msg_id.origin) {
            return;
        }
        if let Some(u) = self.pending.resync(body.update, ctx.now()) {
            ctx.observe(Obs::ResyncReplied {
                domain: self.domain,
                controller: self.id.0,
                update: u.id,
            });
            self.send_update_delayed(ctx, u, SimDuration::ZERO);
            self.arm_retry(ctx);
        }
    }

    // ----- membership & resharing ----------------------------------------

    fn start_phase_change(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        added: bool,
        subject: ControllerId,
    ) {
        let old_view = self.view.clone();
        let result = if added {
            self.view.add(old_view.bootstrap(), subject)
        } else {
            self.view.remove(subject)
        };
        if result.is_err() {
            self.view = old_view;
            return;
        }
        self.in_phase_change = true;
        if added {
            self.detector.track(subject, ctx.now());
        } else {
            self.detector.forget(subject);
        }

        // Cross-domain notification (paper §4.3 final step): the bootstrap
        // forwards a MembershipChanged event to every other domain.
        if self.id == self.view.bootstrap() {
            let event = Event {
                id: EventId(((self.id.0 as u64) << 48) | self.view.phase().0),
                kind: EventKind::MembershipChanged {
                    domain: self.domain,
                    controller: subject,
                    added,
                },
                origin: self.domain,
                forwarded: true,
            };
            let domains: Vec<DomainId> = self
                .remote_members
                .keys()
                .copied()
                .filter(|d| *d != self.domain)
                .collect();
            for d in domains {
                if let Some(target) = self.remote_members[&d].first().copied() {
                    let signed = self.sign_forward(ctx, event);
                    ctx.send(self.shared.dir.controller(d, target), Net::ForwardedEvent(signed));
                }
            }
            // State sync for a joiner.
            if added {
                ctx.send(
                    self.shared.dir.controller(self.domain, subject),
                    Net::StateSync {
                        view: self.view.clone(),
                    },
                );
            }
        }

        if !added && subject == self.id {
            // We were removed: stop participating.
            self.active = false;
            self.replica = None;
            self.in_phase_change = false;
            return;
        }

        let new_members: Vec<u32> = self.view.members().map(|c| c.0).collect();
        let new_cfg = DkgConfig::new(self.view.len() as u32, self.view.threshold_t())
            .expect("valid view parameters");

        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let old_t = old_view.threshold_t() as usize;
            self.pending_reshare = Some(PendingReshare {
                phase: self.view.phase(),
                need: old_t + 1,
                old_group: self.group.clone(),
                new_cfg,
            });
            // Dealers: the lowest old_t + 1 surviving old members.
            let dealers: Vec<ControllerId> = old_view
                .members()
                .filter(|&c| added || c != subject)
                .take(old_t + 1)
                .collect();
            if dealers.contains(&self.id) {
                let share = self.share.clone().expect("members hold shares");
                let dealing = deal_reshare_to(&share, new_cfg.t, &new_members, ctx.rng());
                let phase = self.view.phase();
                for &m in self.members().iter() {
                    if m == self.id {
                        self.reshare_buf.entry(phase).or_default().push(dealing.clone());
                    } else {
                        ctx.send(
                            self.node_of(m),
                            Net::Reshare {
                                phase,
                                dealing: dealing.clone(),
                            },
                        );
                    }
                }
            }
            self.try_finalize_reshare(ctx);
        } else {
            // Modeled crypto: the reshare's *timing* is not part of any
            // figure; jump straight to the new phase with placeholder keys.
            self.group = fake_group(self.view.len() as u32, self.view.threshold_t());
            self.finish_phase_change(ctx);
        }
    }

    fn try_finalize_reshare(&mut self, ctx: &mut Context<'_, Net, Obs>) {
        let Some(pr) = self.pending_reshare.as_ref() else {
            return;
        };
        let Some(dealings) = self.reshare_buf.get(&pr.phase) else {
            return;
        };
        if dealings.len() < pr.need {
            return;
        }
        let dealings = dealings.clone();
        let pr = self.pending_reshare.take().expect("checked above");
        match finalize_reshare(&dealings[..pr.need], &pr.old_group, pr.new_cfg, self.id.0) {
            Ok((share, group)) => {
                self.share = Some(share);
                self.group = group;
                self.finish_phase_change(ctx);
            }
            Err(_) => {
                // A bad dealing slipped in; wait for more dealers.
                self.pending_reshare = Some(pr);
            }
        }
    }

    fn finish_phase_change(&mut self, ctx: &mut Context<'_, Net, Obs>) {
        self.in_phase_change = false;
        self.active = true;
        self.replica = Some(Self::build_replica(
            &self.view,
            self.id,
            self.shared.cfg.view_timeout_ticks,
        ));
        self.agg_buckets.clear();
        ctx.observe(Obs::PhaseChanged {
            domain: self.domain,
            phase: self.view.phase().0,
        });

        // Inform switches of the new phase/quorum/aggregator under the
        // (unchanged) group public key.
        let info = PhaseInfo {
            phase: self.view.phase(),
            quorum: self.view.quorum() as u32,
            aggregator: self.view.aggregator(),
        };
        if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
            let share = self.share.clone().expect("post-reshare share");
            let msg_id = self.msg_id();
            let partial = ShareSigned::sign(labels::PHASE, info, info.phase, msg_id, &share);
            let agg = self.view.aggregator();
            if agg == self.id {
                self.on_phase_partial(ctx, partial);
            } else {
                ctx.send(self.node_of(agg), Net::PhasePartial(partial));
            }
        } else if self.is_lowest() {
            let msg_id = self.msg_id();
            let notice = QuorumSigned {
                payload: info,
                phase: info.phase,
                msg_id,
                signature: self.shared.keys.dummy,
            };
            for node in self.shared.dir.domain_switch_nodes(self.domain) {
                ctx.send(node, Net::PhaseNotice(notice.clone()));
            }
        }

        // Drain work accumulated during the change.
        let queued: Vec<Event> = self.queued_events.drain(..).collect();
        for e in queued {
            self.submit_op(ctx, OrderedOp::Event(e));
        }
        let unprocessed: Vec<OrderedOp> = self.unprocessed.values().cloned().collect();
        self.unprocessed.clear();
        for op in unprocessed {
            self.submit_op(ctx, op);
        }
    }

    fn on_phase_partial(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        msg: ShareSigned<PhaseInfo>,
    ) {
        if !self.is_lowest() {
            return;
        }
        let phase = msg.phase;
        let store = self.phase_partials.entry(phase).or_default();
        store.insert(msg.partial.index, msg.partial);
        let quorum = self.view.quorum();
        if store.len() < quorum || phase != self.view.phase() {
            return;
        }
        let partials: Vec<PartialSignature> = store.values().copied().collect();
        let info = PhaseInfo {
            phase: self.view.phase(),
            quorum: self.view.quorum() as u32,
            aggregator: self.view.aggregator(),
        };
        let msg_id = self.msg_id();
        let Ok(notice) =
            QuorumSigned::aggregate(info, phase, msg_id, &partials[..quorum], quorum - 1)
        else {
            return;
        };
        for node in self.shared.dir.domain_switch_nodes(self.domain) {
            ctx.send(node, Net::PhaseNotice(notice.clone()));
        }
    }

    // ----- inbound verification helpers ------------------------------------

    fn verify_event(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        msg: &Signed<Event>,
        forwarded: bool,
    ) -> bool {
        if !self.shared.cfg.mode.is_cicero() {
            return true;
        }
        // Verification cost is latency, not serialized CPU, on the paper's
        // 12-core controllers: it is folded into the event pipeline delay.
        let _ = &ctx;
        if !self.shared.real_crypto() {
            return true;
        }
        if forwarded {
            let sender = (msg.payload.origin, ControllerId(msg.msg_id.origin));
            match self.shared.keys.controller_pk.get(&sender) {
                Some(pk) => msg.verify(labels::FORWARD, pk),
                None => false,
            }
        } else {
            match self.shared.keys.switch_pk.get(&SwitchId(msg.msg_id.origin)) {
                Some(pk) => msg.verify(labels::EVENT, pk),
                None => false,
            }
        }
    }

    fn on_event_msg(
        &mut self,
        ctx: &mut Context<'_, Net, Obs>,
        msg: Signed<Event>,
        forwarded: bool,
    ) {
        if !self.active {
            return;
        }
        ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
        if !self.verify_event(ctx, &msg, forwarded) {
            return;
        }
        if self.seen_events.contains(&msg.payload.id) {
            return;
        }
        // Forward to other affected domains at *receipt* rather than after
        // local consensus: the domains' agreement rounds then run in
        // parallel, which keeps the cross-domain ordering handshake's
        // serial segment chain off the consensus critical path.
        if !msg.payload.forwarded && self.is_lowest() {
            self.forward_event(ctx, &msg.payload);
        }
        if self.in_phase_change {
            self.queued_events.push(msg.payload);
            return;
        }
        // Controller-aggregation mode: the aggregator is the switches' sole
        // contact and relays events into the control plane (paper §4.2).
        self.submit_op(ctx, OrderedOp::Event(msg.payload));
    }
}

impl Actor<Net, Obs> for ControllerActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Net, Obs>) {
        if self.uses_consensus() {
            ctx.set_timer(TICK_PERIOD, TICK);
        }
        if let Some(hb) = self.shared.cfg.heartbeat {
            if self.active {
                ctx.set_timer(hb, HEARTBEAT);
            }
        }
        let now = ctx.now();
        for m in self.members() {
            if m != self.id {
                self.detector.track(m, now);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Net, Obs>, token: TimerToken) {
        if token == TICK {
            if self.active && !self.in_phase_change {
                if let Some(replica) = self.replica.as_mut() {
                    let outs = replica.on_tick();
                    self.route_outputs(ctx, outs);
                }
            }
            ctx.set_timer(TICK_PERIOD, TICK);
        } else if token == HEARTBEAT {
            if let Some(hb) = self.shared.cfg.heartbeat {
                if self.active {
                    let phase = self.view.phase();
                    for m in self.members() {
                        if m != self.id {
                            ctx.send(
                                self.node_of(m),
                                Net::Heartbeat {
                                    from: self.id,
                                    phase,
                                },
                            );
                        }
                    }
                    if !self.in_phase_change {
                        // Paper §4.3: removal is "proposed by a member that
                        // detects that the member should be removed".
                        let suspects = self.detector.suspects(ctx.now());
                        for s in suspects {
                            if s != self.id && self.view.contains(s) && self.view.len() > 4 {
                                self.submit_op(ctx, OrderedOp::RemoveController(s));
                            }
                        }
                    }
                }
                ctx.set_timer(hb, HEARTBEAT);
            }
        } else if token == RETRY {
            self.on_retry_timer(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Net, Obs>, _from: NodeId, msg: Net) {
        match msg {
            Net::EventMsg(m) => self.on_event_msg(ctx, m, false),
            Net::ForwardedEvent(m) => self.on_event_msg(ctx, m, true),
            Net::Consensus { phase, from, msg } => {
                if !self.active || phase != self.view.phase() || self.in_phase_change {
                    return;
                }
                ctx.charge_cpu(self.shared.cfg.costs.consensus_msg);
                let members = self.members();
                let Some(pos) = members.iter().position(|&m| m == from) else {
                    return;
                };
                let Some(replica) = self.replica.as_mut() else {
                    return;
                };
                let outs = replica.handle(ReplicaId(pos as u32), *msg);
                self.route_outputs(ctx, outs);
            }
            Net::AckMsg(m) => {
                if !self.active {
                    return;
                }
                ctx.charge_cpu(self.shared.cfg.costs.ctrl_msg);
                let mut extra = SimDuration::ZERO;
                if self.shared.cfg.mode.is_cicero() {
                    // Verification latency rides on the released updates
                    // (parallelizable on the controller's cores).
                    extra = self.shared.cfg.costs.bls_verify;
                    if self.shared.real_crypto() {
                        let pk = self
                            .shared
                            .keys
                            .switch_pk
                            .get(&SwitchId(m.msg_id.origin));
                        let valid = pk.map(|pk| m.verify(labels::ACK, pk)).unwrap_or(false);
                        if !valid {
                            return;
                        }
                    }
                }
                let body: AckBody = m.payload;
                let ready = self.pending.ack(body.update, ctx.now());
                for u in ready {
                    self.send_update_delayed(ctx, u, extra);
                }
                // The ack may drain a watched own segment: report upstream.
                let mut drained: Vec<(EventId, u32)> = Vec::new();
                for (key, w) in self.seg_watch.iter_mut() {
                    if key.0 == body.update.event
                        && !w.sending
                        && w.remaining.remove(&body.update)
                        && w.remaining.is_empty()
                    {
                        drained.push(*key);
                    }
                }
                for key in drained {
                    self.start_segment_report(ctx, key);
                }
                self.arm_retry(ctx);
            }
            Net::UpdateNack(m) => self.on_update_nack(ctx, m),
            Net::SegmentApplied(m) => self.on_segment_applied(ctx, m),
            Net::BoundaryRelease(m) => self.on_boundary_release(ctx, m),
            Net::UpdateToAggregator(m) => self.on_update_to_aggregator(ctx, m),
            Net::PhasePartial(m) => self.on_phase_partial(ctx, m),
            Net::Heartbeat { from, .. } => {
                self.detector.heartbeat(from, ctx.now());
            }
            Net::Reshare { phase, dealing } => {
                self.reshare_buf.entry(phase).or_default().push(dealing);
                self.try_finalize_reshare(ctx);
            }
            Net::StateSync { view } => {
                // A standby joiner adopts the view and waits for dealings.
                if !self.active {
                    self.view = view;
                    self.in_phase_change = true;
                    let new_cfg = DkgConfig::new(
                        self.view.len() as u32,
                        self.view.threshold_t(),
                    )
                    .expect("valid view");
                    if self.shared.real_crypto() && self.shared.cfg.mode.is_cicero() {
                        // old view = new view minus ourselves.
                        let old_n = self.view.len() as u32 - 1;
                        let old_t = (old_n.saturating_sub(1)) / 3;
                        self.pending_reshare = Some(PendingReshare {
                            phase: self.view.phase(),
                            need: old_t as usize + 1,
                            old_group: self.group.clone(),
                            new_cfg,
                        });
                        self.try_finalize_reshare(ctx);
                    } else {
                        self.group =
                            fake_group(self.view.len() as u32, self.view.threshold_t());
                        self.finish_phase_change(ctx);
                    }
                    if self.uses_consensus() {
                        ctx.set_timer(TICK_PERIOD, TICK);
                    }
                }
            }
            Net::MembershipCmd(op) => {
                let allowed = match op {
                    OrderedOp::AddController(_) => self.id == self.view.bootstrap(),
                    OrderedOp::RemoveController(_) => true,
                    OrderedOp::Event(_) => false,
                };
                if allowed {
                    self.submit_op(ctx, op);
                }
            }
            // Switch-directed traffic is ignored defensively.
            _ => {}
        }
    }
}
