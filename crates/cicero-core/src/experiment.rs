//! Experiment drivers: one function per figure of the paper's evaluation
//! (§6). The `bench` crate's `figures` binary and the integration tests are
//! thin wrappers over these.

use crate::config::{Aggregation, CostModel, CryptoMode, EngineConfig, Mode};
use crate::engine::Engine;
use crate::msg::Net;
use crate::obs::{events_per_domain, flow_latencies, Cdf, Obs};
use controller::policy::DomainMap;
use netmodel::telekom;
use netmodel::topology::Topology;
use substrate::rng::StdRng;
use substrate::rng::SeedableRng;
use simnet::time::{SimDuration, SimTime};
use southbound::types::{DomainId, FlowId, HostId};
use std::collections::BTreeMap;
use workload::spec::WorkloadSpec;

/// The four protocol modes compared throughout the evaluation.
pub const ALL_MODES: [Mode; 4] = [
    Mode::Centralized,
    Mode::CrashTolerant,
    Mode::Cicero {
        aggregation: Aggregation::Switch,
    },
    Mode::Cicero {
        aggregation: Aggregation::Controller,
    },
];

/// Result of one flow-completion run.
#[derive(Clone, Debug)]
pub struct FlowRun {
    /// Mode label (paper legend).
    pub label: &'static str,
    /// Flow-completion CDF.
    pub cdf: Cdf,
    /// Events processed per domain.
    pub events_per_domain: BTreeMap<DomainId, usize>,
    /// Distinct events processed network-wide.
    pub unique_events: usize,
    /// Mean switch CPU utilization series (per CPU bucket).
    pub mean_switch_cpu: Vec<f64>,
}

/// Runs one workload under one mode on the given topology/domain split.
pub fn run_flow_completion(
    mode: Mode,
    topo: &Topology,
    domain_map: DomainMap,
    spec: &WorkloadSpec,
    rule_reuse: bool,
    seed: u64,
) -> FlowRun {
    run_flow_completion_with(mode, topo, domain_map, spec, rule_reuse, seed, true)
}

/// [`run_flow_completion`] with the cross-domain ordering handshake knob
/// exposed. `cross_domain_handshake = false` reproduces the paper's
/// behavior, which installs each domain's path segment independently (and
/// therefore admits transient cross-boundary black holes — see DESIGN.md
/// §3); `true` is the default, consistency-preserving protocol.
pub fn run_flow_completion_with(
    mode: Mode,
    topo: &Topology,
    domain_map: DomainMap,
    spec: &WorkloadSpec,
    rule_reuse: bool,
    seed: u64,
    cross_domain_handshake: bool,
) -> FlowRun {
    run_flow_completion_costed(
        mode,
        topo,
        domain_map,
        spec,
        rule_reuse,
        seed,
        cross_domain_handshake,
        CostModel::default(),
    )
}

/// [`run_flow_completion_with`] with the per-operation [`CostModel`] also
/// exposed, so figures can be produced under the paper-calibrated defaults
/// *or* under [`CostModel::measured`] (this host's bench medians for the
/// fast crypto paths).
#[allow(clippy::too_many_arguments)]
pub fn run_flow_completion_costed(
    mode: Mode,
    topo: &Topology,
    domain_map: DomainMap,
    spec: &WorkloadSpec,
    rule_reuse: bool,
    seed: u64,
    cross_domain_handshake: bool,
    costs: CostModel,
) -> FlowRun {
    let mut cfg = EngineConfig::for_mode(mode);
    cfg.rule_reuse = rule_reuse;
    cfg.seed = seed;
    cfg.crypto = CryptoMode::Modeled;
    cfg.cross_domain_handshake = cross_domain_handshake;
    cfg.costs = costs;
    let mut rng = StdRng::seed_from_u64(seed);
    let flows = workload::gen::generate(topo, spec, &mut rng);
    let mut engine = Engine::build(cfg, topo.clone(), domain_map, 0);
    engine.inject_flows(&flows);
    let horizon = flows
        .last()
        .map(|f| f.start + SimDuration::from_secs(30))
        .unwrap_or(SimTime::ZERO + SimDuration::from_secs(60));
    engine.run(horizon);
    let obs = engine.observations();
    FlowRun {
        label: mode.label(),
        cdf: Cdf::from_latencies(&flow_latencies(obs)),
        events_per_domain: events_per_domain(obs),
        unique_events: crate::obs::unique_events(obs),
        mean_switch_cpu: engine.mean_switch_cpu(),
    }
}

/// Fig. 11a/11b/11c: single-pod (40 racks), single domain, 4 controllers.
pub fn fig11_flow_completion(spec: &WorkloadSpec, rule_reuse: bool, seed: u64) -> Vec<FlowRun> {
    let topo = Topology::single_pod(40, 4, 4);
    ALL_MODES
        .iter()
        .map(|&mode| {
            run_flow_completion(
                mode,
                &topo,
                DomainMap::single(&topo),
                spec,
                rule_reuse,
                seed,
            )
        })
        .collect()
}

/// Fig. 11d: returns `(label, mean switch CPU series)` for each mode under
/// the Hadoop workload.
pub fn fig11d_switch_cpu(seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let spec = workload::spec::hadoop();
    fig11_flow_completion(&spec, true, seed)
        .into_iter()
        .map(|r| (r.label, r.mean_switch_cpu))
        .collect()
}

/// Fig. 11d under *measured* crypto costs: the per-switch CPU series with
/// every cryptographic term of the [`CostModel`] replaced by this host's
/// bench medians for the optimized implementations
/// ([`CostModel::measured`]) — what the paper's figure would look like on
/// modern hardware with the batched verify path, rather than on the
/// 2012-era PBC testbed the defaults are calibrated to.
pub fn fig11d_switch_cpu_measured(seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let spec = workload::spec::hadoop();
    let topo = Topology::single_pod(40, 4, 4);
    ALL_MODES
        .iter()
        .map(|&mode| {
            let run = run_flow_completion_costed(
                mode,
                &topo,
                DomainMap::single(&topo),
                &spec,
                true,
                seed,
                true,
                CostModel::measured(),
            );
            (run.label, run.mean_switch_cpu)
        })
        .collect()
}

/// Fig. 12a: average time to apply a single switch update as a function of
/// the control-plane size (1 = centralized).
pub fn fig12a_update_time(sizes: &[u32], reps: u32, seed: u64) -> Vec<(Mode, u32, f64)> {
    let mut out = Vec::new();
    for &n in sizes {
        let modes: &[Mode] = if n == 1 {
            &[Mode::Centralized]
        } else {
            &[
                Mode::CrashTolerant,
                Mode::Cicero {
                    aggregation: Aggregation::Switch,
                },
                Mode::Cicero {
                    aggregation: Aggregation::Controller,
                },
            ]
        };
        for &mode in modes {
            let avg_ms = single_update_time(mode, n, reps, seed);
            out.push((mode, n, avg_ms));
        }
    }
    out
}

/// Measures the mean latency from event injection to update application for
/// a one-switch route (same-ToR hosts ⇒ a single update, isolating protocol
/// cost from reverse-path sequencing).
pub fn single_update_time(mode: Mode, controllers: u32, reps: u32, seed: u64) -> f64 {
    let mut cfg = EngineConfig::for_mode(mode);
    cfg.controllers_per_domain = controllers;
    cfg.seed = seed;
    let topo = Topology::single_pod(2, 2, 4);
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);

    let mut total_ms = 0.0;
    let mut count = 0u32;
    let tors: Vec<_> = topo
        .switches()
        .iter()
        .filter(|s| s.role == netmodel::topology::SwitchRole::TopOfRack)
        .map(|s| s.id)
        .collect();
    for rep in 0..reps {
        let tor = tors[(rep as usize) % tors.len()];
        let hosts = topo.hosts_on(tor);
        // Distinct same-rack pair per repetition: one-switch route.
        let (src, dst) = (
            hosts[(2 * rep as usize) % hosts.len()],
            hosts[(2 * rep as usize + 1) % hosts.len()],
        );
        if src == dst {
            continue;
        }
        let start = engine.now() + SimDuration::from_millis(50);
        let node = engine.switch_node(tor);
        let applied_before = count_applied(engine.observations());
        engine.inject_raw(
            start,
            simnet::sim::ENVIRONMENT,
            node,
            Net::FlowArrival {
                flow: FlowId(1000 + rep as u64),
                src,
                dst,
                bytes: 1000,
                transit: SimDuration::from_micros(20),
                start,
            },
        );
        engine.run(start + SimDuration::from_secs(5));
        let obs = engine.observations();
        if count_applied(obs) > applied_before {
            if let Some(o) = obs
                .iter()
                .rev()
                .find(|o| matches!(o.value, Obs::UpdateApplied { .. }))
            {
                total_ms += o.at.since(start).as_millis_f64();
                count += 1;
            }
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        total_ms / count as f64
    }
}

fn count_applied(obs: &[simnet::sim::Observation<Obs>]) -> usize {
    obs.iter()
        .filter(|o| matches!(o.value, Obs::UpdateApplied { .. }))
        .count()
}

/// Fig. 12b: percentage of total events handled by each control plane when
/// one pod is split into `k` rack-range domains.
pub fn fig12b_event_locality(spec: &WorkloadSpec, k: u16, seed: u64) -> Vec<f64> {
    let topo = Topology::single_pod(40, 4, 4);
    let dm = DomainMap::split_racks(&topo, k);
    let run = run_flow_completion(
        Mode::Cicero {
            aggregation: Aggregation::Switch,
        },
        &topo,
        dm,
        spec,
        true,
        seed,
    );
    let total = run.unique_events;
    if total == 0 {
        return vec![0.0; k as usize];
    }
    // Share of all (distinct) events each control plane had to process; the
    // shares exceed 100/k exactly by the multi-domain event tax.
    (0..k)
        .map(|d| {
            100.0 * run.events_per_domain.get(&DomainId(d)).copied().unwrap_or(0) as f64
                / total as f64
        })
        .collect()
}

/// Fig. 12c topology: two server pods plus an interconnect, either as one
/// domain with `12` controllers or three domains with 4 each.
pub fn fig12c_runs(spec: &WorkloadSpec, seed: u64) -> Vec<(String, Cdf)> {
    let topo = Topology::multi_pod(2, 8, 4, 4, 4);
    let mut out = Vec::new();
    for (label, dm, per_domain, agg) in [
        (
            "Cicero (single domain, 12 ctrl)",
            DomainMap::single(&topo),
            12,
            Aggregation::Switch,
        ),
        (
            "Cicero Agg (single domain, 12 ctrl)",
            DomainMap::single(&topo),
            12,
            Aggregation::Controller,
        ),
        (
            "Cicero MD (3 domains x 4 ctrl)",
            DomainMap::by_pod(&topo),
            4,
            Aggregation::Switch,
        ),
        (
            "Cicero Agg MD (3 domains x 4 ctrl)",
            DomainMap::by_pod(&topo),
            4,
            Aggregation::Controller,
        ),
    ] {
        let mut cfg = EngineConfig::for_mode(Mode::Cicero { aggregation: agg });
        cfg.controllers_per_domain = per_domain;
        cfg.seed = seed;
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = workload::gen::generate(&topo, spec, &mut rng);
        let mut engine = Engine::build(cfg, topo.clone(), dm, 0);
        engine.inject_flows(&flows);
        let horizon = flows.last().map(|f| f.start + SimDuration::from_secs(30));
        engine.run(horizon.unwrap_or(SimTime::ZERO + SimDuration::from_secs(60)));
        out.push((
            label.to_string(),
            Cdf::from_latencies(&flow_latencies(engine.observations())),
        ));
    }
    out
}

/// Fig. 12d topology: several Deutsche-Telekom-sited data centers, four
/// pods each, one domain per pod — centralized vs Cicero multi-domain.
///
/// Two Cicero MD series are produced: "Cicero MD unordered" reproduces the
/// paper's measurement (domains install their path segments independently,
/// which is what Fig. 12d actually benchmarked), and "Cicero MD" runs the
/// default consistency-preserving protocol, whose cross-domain handshake
/// serializes boundary-crossing installs destination-first (DESIGN.md §3)
/// and therefore pays an ordering tax on multi-domain flows.
pub fn fig12d_runs(spec: &WorkloadSpec, dcs: u16, seed: u64) -> Vec<(String, Cdf)> {
    let topo = Topology::multi_dc(dcs, 4, 6, 4, 2, 2, telekom::wan(dcs));
    let mut out = Vec::new();
    for (label, mode, handshake) in [
        ("Centralized", Mode::Centralized, true),
        (
            "Cicero MD",
            Mode::Cicero {
                aggregation: Aggregation::Switch,
            },
            true,
        ),
        (
            "Cicero MD unordered",
            Mode::Cicero {
                aggregation: Aggregation::Switch,
            },
            false,
        ),
        (
            "Cicero Agg MD",
            Mode::Cicero {
                aggregation: Aggregation::Controller,
            },
            true,
        ),
    ] {
        let dm = DomainMap::by_pod(&topo);
        let run = run_flow_completion_with(mode, &topo, dm, spec, true, seed, handshake);
        let _ = &run.label;
        out.push((label.to_string(), run.cdf));
    }
    out
}

/// One series of the Segway comparison: flow-completion CDF plus the
/// run's total control-plane message cost (deliveries, including
/// retransmissions).
#[derive(Clone, Debug)]
pub struct ModeCost {
    /// Series label.
    pub label: String,
    /// Flow-completion CDF.
    pub cdf: Cdf,
    /// Control-plane messages delivered over the whole run.
    pub messages: u64,
}

/// The decentralized-execution comparison (ez-Segway-style mode vs the
/// paper's protocol), on the Fig. 12d WAN fabric at *equal consistency*:
/// both series order boundary-crossing installs destination-first —
/// Cicero MD via the controller-to-controller handshake, Segway via
/// switch-to-switch signed readies. One controller round per update in
/// Segway (all segments pushed at once, gated locally) versus a
/// round-trip per dependency edge through the control plane, so Segway
/// completes flows faster; the message counts expose each mode's total
/// control-plane cost alongside.
pub fn segway_vs_cicero_md(spec: &WorkloadSpec, dcs: u16, seed: u64) -> Vec<ModeCost> {
    let topo = Topology::multi_dc(dcs, 4, 6, 4, 2, 2, telekom::wan(dcs));
    let mut out = Vec::new();
    for (label, mode) in [
        (
            "Cicero MD",
            Mode::Cicero {
                aggregation: Aggregation::Switch,
            },
        ),
        ("Segway MD", Mode::Segway),
    ] {
        let mut cfg = EngineConfig::for_mode(mode);
        cfg.rule_reuse = true;
        cfg.seed = seed;
        cfg.crypto = CryptoMode::Modeled;
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = workload::gen::generate(&topo, spec, &mut rng);
        let mut engine = Engine::build(cfg, topo.clone(), DomainMap::by_pod(&topo), 0);
        engine.inject_flows(&flows);
        let horizon = flows
            .last()
            .map(|f| f.start + SimDuration::from_secs(30))
            .unwrap_or(SimTime::ZERO + SimDuration::from_secs(60));
        engine.run(horizon);
        out.push(ModeCost {
            label: label.to_string(),
            cdf: Cdf::from_latencies(&flow_latencies(engine.observations())),
            messages: engine.delivered_messages(),
        });
    }
    out
}

/// The mean flow *setup* latency of a mode: first-flow completion minus the
/// pure data-plane time. Used by the calibration test against the paper's
/// §6.2 anchors (≈2.9 / 4.3 / 8.3 / 11.6 ms).
pub fn flow_setup_latency_ms(mode: Mode, seed: u64) -> f64 {
    let mut cfg = EngineConfig::for_mode(mode);
    cfg.seed = seed;
    let topo = Topology::single_pod(4, 4, 4);
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg.clone(), topo.clone(), dm, 0);
    let hosts = topo.hosts();
    let mut total = 0.0;
    let mut n = 0;
    for i in 0..20usize {
        // Cross-rack pair: 3-switch route (ToR -> edge -> ToR).
        let src = hosts[i % hosts.len()].id;
        let dst = hosts
            .iter()
            .map(|h| h.id)
            .find(|&h| {
                let a = topo.host(src).unwrap().attached;
                let b = topo.host(h).unwrap().attached;
                h != src && a != b
            })
            .unwrap_or(hosts[(i + 1) % hosts.len()].id);
        let start = engine.now() + SimDuration::from_millis(20);
        let r = netmodel::routing::route(&topo, src, dst).expect("connected");
        let node = engine.switch_node(r.path[0]);
        let bytes = 100u64;
        engine.inject_raw(
            start,
            simnet::sim::ENVIRONMENT,
            node,
            Net::FlowArrival {
                flow: FlowId(i as u64 + 1),
                src,
                dst,
                bytes,
                transit: r.latency,
                start,
            },
        );
        engine.run(start + SimDuration::from_secs(5));
        // setup = completion latency - data-plane part.
        let data_plane = r.latency + cfg.tx_time(bytes);
        if let Some(o) = engine
            .observations()
            .iter()
            .rev()
            .find(|o| matches!(o.value, Obs::FlowCompleted { flow, .. } if flow == FlowId(i as u64 + 1)))
        {
            if let Obs::FlowCompleted { start: s, .. } = o.value {
                let lat = o.at.since(s);
                total += lat.as_millis_f64() - data_plane.as_millis_f64();
                n += 1;
            }
        }
    }
    let _ = HostId(0);
    if n == 0 {
        f64::NAN
    } else {
        total / n as f64
    }
}
