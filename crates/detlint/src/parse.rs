//! A lightweight item-level parse over the lexed token stream: enum
//! definitions with their variants, function bodies, call sites, and
//! `Enum::Variant` path occurrences classified as match-arm patterns or
//! constructions.
//!
//! This is deliberately *not* a Rust parser. It recovers exactly the
//! structure the flow rules ([`crate::flow`]) need, with the same design
//! constraints as the lexer: zero dependencies, total determinism, and a
//! bias toward never misclassifying — ambiguous constructs degrade into
//! "use" (the conservative direction for coverage rules, which only ever
//! demand a *handler*, never forbid one).

use crate::lex::{Tok, Token};

/// One variant of a parsed `enum`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumVariant {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant's declaration (where a
    /// `detlint::allow` for a coverage finding belongs).
    pub line: u32,
}

/// A parsed `enum` definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// The variants, in declaration order.
    pub variants: Vec<EnumVariant>,
}

/// A parsed `fn` item (free function, method, or nested fn).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the body's matching `}` (== `body_start` when the
    /// brace never closes; the range is then empty and harmless).
    pub body_end: usize,
}

/// One `Enum::Variant` path occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VariantUse {
    /// The enum path segment (`Net`, `Obs`, `WalRecord`).
    pub enum_name: String,
    /// The variant segment.
    pub variant: String,
    /// 1-based line of the occurrence.
    pub line: u32,
    /// Token index of the enum-name identifier.
    pub token: usize,
    /// `true` when the occurrence is a match-arm pattern: the path (plus
    /// one optional balanced `(..)`/`{..}` payload) is followed by `=>`,
    /// an or-pattern `|`, or a match guard whose `=>` arrives before the
    /// arm ends. Everything else — constructions, `matches!`, `if let` —
    /// counts as a plain use.
    pub is_match_arm: bool,
}

/// Everything the flow rules need to know about one file.
pub struct FileIndex<'a> {
    /// Workspace-relative path (same convention as [`crate::lint_source`]).
    pub path: String,
    /// The file's comment/literal-stripped token stream.
    pub tokens: &'a [Token],
    /// Every `enum` defined in the file.
    pub enums: Vec<EnumDef>,
    /// Every `fn` defined in the file (nested fns included).
    pub fns: Vec<FnDef>,
    /// Every `Enum::Variant` path occurrence, for enums named in
    /// `tracked` at indexing time.
    pub uses: Vec<VariantUse>,
}

pub(crate) fn ident_at<'a>(tokens: &'a [Token], i: usize) -> Option<&'a str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn is_open(c: char) -> bool {
    matches!(c, '(' | '[' | '{')
}

fn is_close(c: char) -> bool {
    matches!(c, ')' | ']' | '}')
}

/// Skips a balanced bracket group starting at `i` (which must be an opening
/// bracket); returns the index just past the matching close. Unbalanced
/// input returns `tokens.len()`.
pub(crate) fn skip_balanced(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct(c) if is_open(*c) => depth += 1,
            Tok::Punct(c) if is_close(*c) => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parses every `enum Name { Variant, ... }` in the stream. Attributes on
/// variants are skipped; payloads (tuple or struct) and discriminants are
/// consumed without interpretation.
fn parse_enums(tokens: &[Token]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("enum") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            i += 1;
            continue;
        };
        let def_line = tokens[i].line;
        // Skip generics / bounds to the opening brace (or bail at `;`).
        let mut j = i + 2;
        while j < tokens.len() && !punct_at(tokens, j, '{') && !punct_at(tokens, j, ';') {
            j += 1;
        }
        if !punct_at(tokens, j, '{') {
            i = j + 1;
            continue;
        }
        let body_end = skip_balanced(tokens, j);
        let mut variants = Vec::new();
        let mut k = j + 1;
        while k + 1 < body_end {
            // Variant attributes: `#[...]`.
            while punct_at(tokens, k, '#') && punct_at(tokens, k + 1, '[') {
                k = skip_balanced(tokens, k + 1);
            }
            let Some(vname) = ident_at(tokens, k) else { break };
            variants.push(EnumVariant {
                name: vname.to_string(),
                line: tokens[k].line,
            });
            // Consume payload / discriminant to the `,` (or the enum's `}`)
            // at variant depth.
            k += 1;
            let mut depth = 0usize;
            while k + 1 < body_end + 1 && k < tokens.len() {
                match &tokens[k].tok {
                    Tok::Punct(c) if is_open(*c) => depth += 1,
                    Tok::Punct(c) if is_close(*c) => {
                        if depth == 0 {
                            break; // the enum's own `}`
                        }
                        depth -= 1;
                    }
                    Tok::Punct(',') if depth == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        out.push(EnumDef {
            name: name.to_string(),
            line: def_line,
            variants,
        });
        i = body_end;
    }
    out
}

/// Parses every `fn name ... { body }`. `fn` *types* (`fn(u32) -> u32`)
/// have no name identifier and are skipped naturally.
fn parse_fns(tokens: &[Token]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            i += 1;
            continue;
        };
        let line = tokens[i].line;
        // Scan the signature for the body brace: the first `{` outside any
        // paren/bracket group. A `;` there means a bodyless trait method.
        let mut j = i + 2;
        let mut depth = 0usize;
        let mut body_start = None;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct(c) if matches!(c, '(' | '[') => depth += 1,
                Tok::Punct(c) if matches!(c, ')' | ']') => depth = depth.saturating_sub(1),
                Tok::Punct('{') if depth == 0 => {
                    body_start = Some(j);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(start) = body_start {
            let end = skip_balanced(tokens, start).saturating_sub(1);
            out.push(FnDef {
                name: name.to_string(),
                line,
                body_start: start,
                body_end: end.max(start),
            });
        }
        // Continue *inside* the body too: nested fns get their own entry.
        i += 2;
    }
    out
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "in", "as", "move", "else",
];

/// Call sites (`name(...)` or `.name(...)`) inside `tokens[range]`,
/// returned as `(callee, token_index)`. Macro invocations (`name!(...)`)
/// are excluded.
pub fn calls_in(tokens: &[Token], start: usize, end: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in start..end.min(tokens.len()) {
        let Some(name) = ident_at(tokens, i) else { continue };
        if !punct_at(tokens, i + 1, '(') || NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        out.push((name.to_string(), i));
    }
    out
}

/// Finds every `E::V` path occurrence for enums named in `tracked`, and
/// classifies each as match-arm pattern or plain use.
fn variant_uses(tokens: &[Token], tracked: &[&str]) -> Vec<VariantUse> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let Some(e) = ident_at(tokens, i) else { continue };
        if !tracked.contains(&e) {
            continue;
        }
        if !(punct_at(tokens, i + 1, ':') && punct_at(tokens, i + 2, ':')) {
            continue;
        }
        let Some(v) = ident_at(tokens, i + 3) else { continue };
        // Qualified non-variant paths (`Net::decode(..)`) are recorded too;
        // the flow rules intersect with declared variants, so they never
        // produce findings.
        let mut j = i + 4;
        if punct_at(tokens, j, '(') || punct_at(tokens, j, '{') {
            j = skip_balanced(tokens, j);
        }
        let is_match_arm = arm_follows(tokens, j);
        out.push(VariantUse {
            enum_name: e.to_string(),
            variant: v.to_string(),
            line: tokens[i].line,
            token: i,
            is_match_arm,
        });
    }
    out
}

/// `true` when the tokens at `j` continue a match arm: `=>` directly, an
/// or-pattern `|` (`A | B =>`), a binding `@`, or a guard `if cond =>`
/// whose `=>` arrives before the arm's `,` / enclosing close.
fn arm_follows(tokens: &[Token], j: usize) -> bool {
    if punct_at(tokens, j, '=') && punct_at(tokens, j + 1, '>') {
        return true;
    }
    if punct_at(tokens, j, '|') {
        // `a | b` bit-or versus or-pattern is ambiguous at token level;
        // treating bit-or over enum paths as a pattern is safe because
        // enums here are not bit-or-able.
        return true;
    }
    if ident_at(tokens, j) == Some("if") {
        // Match guard: scan to the arm body marker before the arm ends.
        let mut depth = 0usize;
        let mut k = j + 1;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Punct(c) if is_open(*c) => depth += 1,
                Tok::Punct(c) if is_close(*c) => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                Tok::Punct(',') if depth == 0 => return false,
                Tok::Punct('=') if depth == 0 && punct_at(tokens, k + 1, '>') => return true,
                _ => {}
            }
            k += 1;
        }
    }
    false
}

/// Indexes one file for the flow rules. `tracked` names the enums whose
/// path occurrences are collected (the protocol alphabets).
pub fn index_file<'a>(path: &str, tokens: &'a [Token], tracked: &[&str]) -> FileIndex<'a> {
    FileIndex {
        path: path.to_string(),
        tokens,
        enums: parse_enums(tokens),
        fns: parse_fns(tokens),
        uses: variant_uses(tokens, tracked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    #[test]
    fn enum_variants_with_payloads_and_attributes() {
        let src = r#"
pub enum Net {
    FlowArrival { flow: FlowId, at: SimTime },
    #[allow(dead_code)]
    UpdateMsg(Signed<NetworkUpdate>),
    Heartbeat,
}
enum Other { A = 3, B((u32, u32)) }
"#;
        let lexed = lex(src);
        let enums = parse_enums(&lexed.tokens);
        assert_eq!(enums.len(), 2);
        let names: Vec<&str> = enums[0].variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["FlowArrival", "UpdateMsg", "Heartbeat"]);
        assert_eq!(enums[0].variants[0].line, 3);
        let other: Vec<&str> = enums[1].variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(other, vec!["A", "B"]);
    }

    #[test]
    fn fn_bodies_and_nested_fns() {
        let src = "impl S {\n fn outer(&self, x: fn(u32) -> u32) -> u32 {\n fn inner() {}\n x(1)\n } }\nfn bodyless();";
        let lexed = lex(src);
        let fns = parse_fns(&lexed.tokens);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // The nested fn's body is inside the outer's range.
        assert!(fns[1].body_start > fns[0].body_start && fns[1].body_end < fns[0].body_end);
    }

    #[test]
    fn match_arms_versus_constructions() {
        let src = r#"
fn f(m: Net) {
    match m {
        Net::FlowArrival { flow, .. } => go(flow),
        Net::AckMsg(a) if a.ok() => ack(a),
        Net::Heartbeat | Net::PhaseNotice(_) => {}
        _ => {}
    }
    send(Net::FlowDone { flow: 1 });
    let is = matches!(m, Net::LinkDown { .. });
}
"#;
        let lexed = lex(src);
        let uses = variant_uses(&lexed.tokens, &["Net"]);
        let arm = |v: &str| uses.iter().find(|u| u.variant == v).expect("variant present").is_match_arm;
        assert!(arm("FlowArrival"));
        assert!(arm("AckMsg"), "guarded arm still classified as arm");
        assert!(arm("Heartbeat"), "or-pattern head classified as arm");
        assert!(arm("PhaseNotice"));
        assert!(!arm("FlowDone"), "construction is not an arm");
        assert!(!arm("LinkDown"), "matches! is a use, not an arm");
    }

    #[test]
    fn call_sites_exclude_keywords_and_macros() {
        let src = "fn f() { if (x) { g(1); h.i(2); assert!(j(3)); } }";
        let lexed = lex(src);
        let fns = parse_fns(&lexed.tokens);
        let calls: Vec<String> = calls_in(&lexed.tokens, fns[0].body_start, fns[0].body_end)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(calls.contains(&"g".to_string()));
        assert!(calls.contains(&"i".to_string()));
        assert!(calls.contains(&"j".to_string()), "call inside macro args still found");
        assert!(!calls.contains(&"if".to_string()));
        assert!(!calls.contains(&"assert".to_string()), "macro bang is not a call");
    }
}
