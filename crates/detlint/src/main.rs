//! The `detlint` binary: lints the whole workspace — per-file token rules
//! plus the cross-file protocol-flow rules — and exits nonzero on any
//! finding. Wired into `scripts/verify.sh`; the same check also runs as the
//! facade test `tests/detlint.rs` so plain `cargo test` enforces it.
//!
//! Usage: `detlint [root] [--format human|json]`. The JSON output is a
//! stable, sorted array of findings for CI and editor integration.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("human") => format = Format::Human,
                other => {
                    eprintln!(
                        "detlint: --format expects `human` or `json`, got {other:?}"
                    );
                    return ExitCode::FAILURE;
                }
            },
            _ => root = Some(PathBuf::from(arg)),
        }
    }
    let root = root.unwrap_or_else(|| {
        // The crate lives at <workspace>/crates/detlint.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });
    let findings = detlint::lint_workspace(&root);
    match format {
        Format::Json => {
            // Hand-rolled, dependency-free; findings are already sorted by
            // (file, line, rule), so the output is byte-stable per tree.
            let mut out = String::from("[");
            for (i, f) in findings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
                    json_str(&f.file),
                    f.line,
                    json_str(f.rule),
                    json_str(&f.message),
                    json_str(f.hint)
                ));
            }
            out.push_str(if findings.is_empty() { "]" } else { "\n]" });
            println!("{out}");
        }
        Format::Human => {
            if findings.is_empty() {
                println!("detlint: workspace clean ({} rules)", detlint::RULE_IDS.len());
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!(
                    "detlint: {} finding(s). Suppress only with `// detlint::allow(rule): reason`.",
                    findings.len()
                );
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
