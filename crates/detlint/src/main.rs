//! The `detlint` binary: lints the whole workspace and exits nonzero on any
//! finding. Wired into `scripts/verify.sh`; the same check also runs as the
//! facade test `tests/detlint.rs` so plain `cargo test` enforces it.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| {
        // The crate lives at <workspace>/crates/detlint.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });
    let findings = detlint::lint_workspace(&root);
    if findings.is_empty() {
        println!("detlint: workspace clean ({} rules)", detlint::RULE_IDS.len());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        eprintln!("{f}");
    }
    eprintln!(
        "detlint: {} finding(s). Suppress only with `// detlint::allow(rule): reason`.",
        findings.len()
    );
    ExitCode::FAILURE
}
