//! The rule set: which constructs are forbidden where, and why.
//!
//! Every rule is a matcher over the comment/literal-stripped token stream of
//! one file, scoped by the file's workspace-relative path. The scopes encode
//! this repository's determinism architecture:
//!
//! | rule | forbids | scope |
//! |------|---------|-------|
//! | `no-random-order-collections` | `HashMap`/`HashSet` | deterministic crates |
//! | `no-wall-clock` | `Instant`, `SystemTime`, `thread::spawn` | everywhere except `substrate::benchkit`, `substrate::sync`, `crates/bench`, `cicero-node`'s clock boundary |
//! | `no-os-entropy` | `OsRng`, `thread_rng`, `from_entropy`, `getrandom`, `RandomState` | everywhere except `substrate::rng` |
//! | `no-unsafe` | the `unsafe` keyword | workspace-wide |
//! | `panic-policy` | `unwrap()`, reason-less `expect()`, `todo!`/`unimplemented!` | protocol hot paths, non-test code |
//! | `durable-io-boundary` | `OpenOptions`, `sync_all`, `sync_data` | everywhere except `cicero-node`'s disk boundary |
//!
//! The cross-file protocol-flow rules (`net-variant-unhandled`,
//! `obs-variant-unaudited`, `wal-variant-unreplayed`,
//! `write-ahead-ordering`, `actor-blocking`, `lock-order-cycle`) live in
//! [`crate::flow`] — they run over the whole file set at once.

use crate::lex::{Lexed, Tok, Token};

/// One finding: a rule violation at a source location, with a fix hint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (stable, usable in `detlint::allow(<rule>)`).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}\n    hint: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Rule ids (also the set of names `detlint::allow` accepts). The first
/// six are per-file token rules ([`apply_rules`]); the rest are the
/// cross-file protocol-flow rules ([`crate::flow`]).
pub const RULE_IDS: &[&str] = &[
    "no-random-order-collections",
    "no-wall-clock",
    "no-os-entropy",
    "no-unsafe",
    "panic-policy",
    "durable-io-boundary",
    "net-variant-unhandled",
    "obs-variant-unaudited",
    "wal-variant-unreplayed",
    "write-ahead-ordering",
    "actor-blocking",
    "lock-order-cycle",
];

/// Crates whose execution must be a pure function of the seed. The facade
/// crate (root `src/`, `tests/`, `examples/`) counts as `cicero`.
const DETERMINISTIC_CRATES: &[&str] = &[
    "netmodel",
    "simnet",
    "bft",
    "controller",
    "cicero-core",
    "cicero",
    "simcheck",
    "southbound",
    "workload",
    "blscrypto",
];

/// Files allowed to touch wall-clock time and OS threads: the benchmark
/// kit measures real time by definition, `substrate::sync` wraps std
/// threading, the bench crate drives real-time measurements, and
/// `cicero-node`'s clock module is the threaded runtime's *single*
/// wall-clock boundary (it maps an `Instant` epoch onto `SimTime`; the
/// rest of that crate — executor included — stays under the rule).
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/substrate/src/benchkit.rs",
    "crates/substrate/src/sync.rs",
    "crates/cicero-node/src/clock.rs",
];
const WALL_CLOCK_ALLOWED_PREFIXES: &[&str] = &["crates/bench/"];

/// The only module that may produce randomness (seeded, never from the OS).
const ENTROPY_ALLOWED: &[&str] = &["crates/substrate/src/rng.rs"];

/// The single module allowed to open files for writing and fsync them:
/// `cicero-node`'s disk boundary implements `substrate::storage::Disk`
/// over real files (append + fsync, temp-file + rename + dir-fsync).
/// Every other component takes a `Disk` handle, so durability semantics
/// (and their simulated counterpart) live in exactly one place.
const DURABLE_IO_ALLOWED: &[&str] = &["crates/cicero-node/src/disk.rs"];

/// Protocol hot paths where PR 2's explicit-failure style is enforced:
/// a bare `unwrap()` carries no invariant; `expect("why")` must state one.
const HOT_PATHS: &[&str] = &[
    "crates/bft/src/replica.rs",
    "crates/cicero-core/src/switch.rs",
    "crates/cicero-core/src/engine.rs",
];
// `crates/cicero-core/src/ctrl` covers the controller's whole module
// directory (consensus, events, barriers, delivery, membership, ...).
const HOT_PATH_PREFIXES: &[&str] = &[
    "crates/controller/src/",
    "crates/cicero-core/src/ctrl",
];

/// The crate a workspace-relative path belongs to (`cicero` for the facade
/// root's `src/`, `tests/`, and `examples/`).
fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or(rest)
    } else {
        "cicero"
    }
}

fn in_deterministic_crate(path: &str) -> bool {
    DETERMINISTIC_CRATES.contains(&crate_of(path))
}

fn wall_clock_allowed(path: &str) -> bool {
    WALL_CLOCK_ALLOWED.contains(&path)
        || WALL_CLOCK_ALLOWED_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn entropy_allowed(path: &str) -> bool {
    ENTROPY_ALLOWED.contains(&path)
}

fn durable_io_allowed(path: &str) -> bool {
    DURABLE_IO_ALLOWED.contains(&path)
}

fn is_hot_path(path: &str) -> bool {
    HOT_PATHS.contains(&path) || HOT_PATH_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn ident_at<'a>(tokens: &'a [Token], i: usize) -> Option<&'a str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Marks every token inside a `#[test]` or `#[cfg(test)]`-attributed item
/// (the brace-delimited block that follows the attribute). The panic-policy
/// rule only applies outside these regions: tests are *supposed* to panic
/// on broken invariants.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        // Outer attribute: `#` `[` ... `]` (inner `#![...]` has a `!` and is
        // skipped naturally because the bracket is not at i+1).
        if punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '[') {
            // Find the matching close bracket.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(s) if s == "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr {
                // Skip any further attributes, then mark the item's braces.
                let mut k = j + 1;
                while punct_at(tokens, k, '#') && punct_at(tokens, k + 1, '[') {
                    let mut d = 0usize;
                    while k < tokens.len() {
                        match &tokens[k].tok {
                            Tok::Punct('[') => d += 1,
                            Tok::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Advance to the item's opening brace (bail at `;`: a
                // braceless item like `#[cfg(test)] use x;` has no body).
                while k < tokens.len()
                    && !punct_at(tokens, k, '{')
                    && !punct_at(tokens, k, ';')
                {
                    k += 1;
                }
                if punct_at(tokens, k, '{') {
                    let mut d = 0usize;
                    while k < tokens.len() {
                        match &tokens[k].tok {
                            Tok::Punct('{') => d += 1,
                            Tok::Punct('}') => {
                                d -= 1;
                                if d == 0 {
                                    mask[k] = true;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        mask[k] = true;
                        k += 1;
                    }
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Runs every scoped rule over one file's token stream. Escape-hatch
/// directives are applied by the caller ([`crate::lint_source`]).
pub fn apply_rules(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    let deterministic = in_deterministic_crate(path);
    let wall_ok = wall_clock_allowed(path);
    let entropy_ok = entropy_allowed(path);
    let durable_ok = durable_io_allowed(path);
    let hot = is_hot_path(path);
    let test_mask = if hot {
        test_region_mask(tokens)
    } else {
        Vec::new()
    };

    let mut push = |line: u32, rule: &'static str, message: String, hint: &'static str| {
        findings.push(Finding {
            file: path.to_string(),
            line,
            rule,
            message,
            hint,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        match id.as_str() {
            "HashMap" | "HashSet" if deterministic => {
                push(
                    t.line,
                    "no-random-order-collections",
                    format!(
                        "`{id}` iterates in RandomState (per-process random) order; \
                         deterministic crates must not depend on it"
                    ),
                    "use substrate::collections::DetMap / DetSet (ordered, seed-stable)",
                );
            }
            "Instant" | "SystemTime" if !wall_ok => {
                push(
                    t.line,
                    "no-wall-clock",
                    format!("`{id}` reads the wall clock; simulated code must use simnet::time"),
                    "use SimTime/SimDuration, or move timing into substrate::benchkit",
                );
            }
            "thread" if !wall_ok => {
                if punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("spawn")
                {
                    push(
                        t.line,
                        "no-wall-clock",
                        "`thread::spawn` introduces OS-scheduler nondeterminism".to_string(),
                        "model concurrency as simnet actors; real threads only in substrate::sync",
                    );
                }
            }
            "OsRng" | "ThreadRng" | "thread_rng" | "from_entropy" | "getrandom"
            | "RandomState"
                if !entropy_ok =>
            {
                push(
                    t.line,
                    "no-os-entropy",
                    format!("`{id}` draws OS entropy; all randomness must be seed-derived"),
                    "take an explicit seed and use substrate::rng::StdRng::seed_from_u64",
                );
            }
            "OpenOptions" | "sync_all" | "sync_data" if !durable_ok => {
                push(
                    t.line,
                    "durable-io-boundary",
                    format!(
                        "`{id}` opens or fsyncs files; durable I/O is confined to the \
                         disk boundary"
                    ),
                    "take a substrate::storage::Disk handle; real files live only in \
                     cicero-node/src/disk.rs",
                );
            }
            "unsafe" => {
                push(
                    t.line,
                    "no-unsafe",
                    "`unsafe` block or item".to_string(),
                    "every crate root carries #![forbid(unsafe_code)]; find a safe formulation",
                );
            }
            "unwrap" if hot && !test_mask.get(i).copied().unwrap_or(false) => {
                if punct_at(tokens, i + 1, '(') {
                    push(
                        t.line,
                        "panic-policy",
                        "bare `unwrap()` in a protocol hot path states no invariant".to_string(),
                        "use expect(\"invariant: why this cannot fail\") or propagate the error",
                    );
                }
            }
            "expect" if hot && !test_mask.get(i).copied().unwrap_or(false) => {
                if punct_at(tokens, i + 1, '(') {
                    let ok_reason = matches!(
                        tokens.get(i + 2).map(|t| &t.tok),
                        Some(Tok::Str(s)) if !s.trim().is_empty()
                    );
                    if !ok_reason {
                        push(
                            t.line,
                            "panic-policy",
                            "`expect()` without a non-empty literal reason string".to_string(),
                            "state the violated invariant: expect(\"why this cannot fail\")",
                        );
                    }
                }
            }
            "todo" | "unimplemented" if hot && !test_mask.get(i).copied().unwrap_or(false) => {
                if punct_at(tokens, i + 1, '!') {
                    push(
                        t.line,
                        "panic-policy",
                        format!("`{id}!` placeholder in a protocol hot path"),
                        "implement the path or return an explicit error variant",
                    );
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/netmodel/src/routing.rs"), "netmodel");
        assert_eq!(crate_of("crates/cicero-core/tests/e2e.rs"), "cicero-core");
        assert_eq!(crate_of("src/lib.rs"), "cicero");
        assert_eq!(crate_of("tests/consistency.rs"), "cicero");
        assert_eq!(crate_of("examples/lossy_network.rs"), "cicero");
        assert!(in_deterministic_crate("crates/bft/src/replica.rs"));
        assert!(!in_deterministic_crate("crates/substrate/src/rng.rs"));
        assert!(!in_deterministic_crate("crates/bench/src/lib.rs"));
        assert!(!in_deterministic_crate("crates/detlint/src/lib.rs"));
    }

    #[test]
    fn durable_io_confined_to_disk_boundary() {
        let src = r#"
fn persist(f: &std::fs::File) {
    let g = OpenOptions::new().append(true).open("wal.log");
    f.sync_all().ok();
}
"#;
        let lexed = lex(src);
        let flagged = apply_rules("crates/cicero-core/src/ctrl/durable.rs", &lexed);
        let rules: Vec<&str> = flagged
            .iter()
            .filter(|f| f.rule == "durable-io-boundary")
            .map(|f| f.rule)
            .collect();
        assert_eq!(rules.len(), 2, "OpenOptions and sync_all both flagged");
        let allowed = apply_rules("crates/cicero-node/src/disk.rs", &lexed);
        assert!(
            allowed.iter().all(|f| f.rule != "durable-io-boundary"),
            "the disk boundary itself is exempt"
        );
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = r#"
fn hot() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
    #[test]
    fn t() { z.unwrap(); }
}
"#;
        let lexed = lex(src);
        let findings = apply_rules("crates/cicero-core/src/ctrl.rs", &lexed);
        let unwraps: Vec<u32> = findings
            .iter()
            .filter(|f| f.rule == "panic-policy")
            .map(|f| f.line)
            .collect();
        assert_eq!(unwraps, vec![2], "only the non-test unwrap is flagged");
    }
}
