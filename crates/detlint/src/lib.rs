//! detlint: the workspace's in-tree determinism & protocol-safety static
//! analyzer.
//!
//! The whole verification story of this repository rests on seed replay: a
//! failing scenario's seed reproduces the exact same execution on any host.
//! That contract is easy to break silently — one `HashMap` iteration, one
//! `Instant::now()`, one `thread_rng()` — and no unit test notices until a
//! `CHECK_SEED` replay diverges months later. detlint makes those breakages
//! a compile-gate instead: it lexes every `.rs` file in the workspace
//! (comments and string literals stripped, so prose never trips a rule) and
//! matches a small set of scoped rules over the token stream.
//!
//! Rules (see [`rules`] for scopes):
//!
//! * `no-random-order-collections` — `HashMap`/`HashSet` in deterministic
//!   crates; use `substrate::collections::{DetMap, DetSet}`.
//! * `no-wall-clock` — `Instant`/`SystemTime`/`thread::spawn` outside the
//!   benchmark/sync allowlist.
//! * `no-os-entropy` — any OS randomness outside `substrate::rng`.
//! * `no-unsafe` — workspace-wide.
//! * `panic-policy` — bare `unwrap()`, reason-less `expect()`, and
//!   `todo!`/`unimplemented!` in protocol hot paths (non-test code).
//!
//! A second, cross-file pass ([`flow`], over the item index built by
//! [`parse`]) checks the protocol rather than the code: every constructed
//! `Net` variant has a handler arm (`net-variant-unhandled`), every emitted
//! `Obs` variant is consumed by a simcheck oracle (`obs-variant-unaudited`),
//! every appended `WalRecord` has a replay arm (`wal-variant-unreplayed`),
//! WAL appends dominate ack sends (`write-ahead-ordering`), and the
//! threaded runtime never blocks in a handler, holds a lock across a
//! channel op (`actor-blocking`), or orders locks cyclically
//! (`lock-order-cycle`). DESIGN.md §5 spells out which parts are proven
//! and which are fail-closed heuristics.
//!
//! Escape hatch: `// detlint::allow(rule): reason` on the offending line or
//! the line above. The reason is **mandatory** — a reason-less directive is
//! itself a finding (`malformed-allow`) and suppresses nothing. A directive
//! that suppresses nothing is also a finding (`stale-allow`), so allows
//! cannot rot in place after the code they excused is gone.
//!
//! Ships two ways: the `detlint` binary (wired into `scripts/verify.sh`) and
//! the facade test `tests/detlint.rs` (so `cargo test` — tier 1 — enforces
//! it too).

#![forbid(unsafe_code)]

pub mod flow;
pub mod lex;
pub mod parse;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use lex::{lex, Directive, Lexed, Tok, Token};
pub use rules::{Finding, RULE_IDS};

/// Lints one file's source text. `path` must be the workspace-relative path
/// with `/` separators — it determines which rule scopes apply.
///
/// Cross-file flow rules run over whatever file set is given, so on a
/// single file they only see that file (coverage rules stay silent unless
/// the file defines one of the protocol enums itself). Use [`lint_files`]
/// or [`lint_workspace`] for the real analysis.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_files(&[(path.to_string(), source.to_string())])
}

/// Lints a set of files as one unit: the per-file token rules on each,
/// plus the cross-file protocol-flow rules ([`flow`]) over the whole set.
/// Findings come back sorted by (file, line, rule).
///
/// Escape-hatch semantics: a `detlint::allow(rule): reason` directive
/// suppresses findings of `rule` on the directive's own line or the line
/// directly below it — including flow findings, which anchor at the
/// location an allow belongs (a variant declaration, a send site, a
/// blocking call). Directives without a reason, or naming an unknown rule,
/// suppress nothing and are reported as `malformed-allow`; well-formed
/// directives that suppress nothing are reported as `stale-allow`.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    let lexed: Vec<Lexed> = files.iter().map(|(_, src)| lex(src)).collect();

    // Per-file token rules.
    let mut buckets: Vec<Vec<Finding>> = files
        .iter()
        .zip(&lexed)
        .map(|((path, _), lx)| rules::apply_rules(path, lx))
        .collect();

    // Cross-file flow rules, routed to their anchor file's bucket so that
    // file's directives can suppress them.
    let indexes: Vec<parse::FileIndex> = files
        .iter()
        .zip(&lexed)
        .map(|((path, _), lx)| parse::index_file(path, &lx.tokens, flow::TRACKED_ENUMS))
        .collect();
    let mut orphans = Vec::new();
    for f in flow::apply_flow_rules(&indexes) {
        match files.iter().position(|(p, _)| *p == f.file) {
            Some(i) => buckets[i].push(f),
            None => orphans.push(f),
        }
    }

    let mut findings = Vec::new();
    for (((path, _), lx), raw) in files.iter().zip(&lexed).zip(buckets) {
        suppress(path, lx, raw, &mut findings);
    }
    findings.extend(orphans);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Applies one file's `detlint::allow` directives to its findings and
/// accounts for the directives themselves (`malformed-allow`,
/// `stale-allow`).
fn suppress(path: &str, lexed: &Lexed, raw: Vec<Finding>, out: &mut Vec<Finding>) {
    let mut used = vec![false; lexed.directives.len()];
    out.extend(raw.into_iter().filter(|f| {
        let suppressed = lexed.directives.iter().enumerate().any(|(di, d)| {
            let applicable = d.reason.is_some()
                && d.rule == f.rule
                && (d.line == f.line || d.line + 1 == f.line);
            if applicable {
                used[di] = true;
            }
            applicable
        });
        !suppressed
    }));

    for (di, d) in lexed.directives.iter().enumerate() {
        if d.reason.is_none() || !RULE_IDS.contains(&d.rule.as_str()) {
            out.push(Finding {
                file: path.to_string(),
                line: d.line,
                rule: "malformed-allow",
                message: if d.reason.is_none() {
                    format!("detlint::allow({}) has no reason and suppresses nothing", d.rule)
                } else {
                    format!("detlint::allow({}) names an unknown rule", d.rule)
                },
                hint: "write `// detlint::allow(<known-rule>): <why this exception is sound>`",
            });
        } else if !used[di] {
            out.push(Finding {
                file: path.to_string(),
                line: d.line,
                rule: "stale-allow",
                message: format!(
                    "detlint::allow({}) suppresses nothing on this or the next line",
                    d.rule
                ),
                hint: "delete the directive; stale allows mask future regressions",
            });
        }
    }
}

/// Recursively collects every `.rs` file under `root`, skipping `target/`
/// and hidden directories, sorted by workspace-relative path so output (and
/// any failure) is deterministic.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name.starts_with('.') || name == "target" {
                    continue;
                }
                walk(&path, out);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    let mut files = Vec::new();
    walk(root, &mut files);
    files.sort();
    files
}

/// Lints every `.rs` file in the workspace rooted at `root` as one unit
/// (the flow rules see all files at once). Findings come back sorted by
/// (file, line, rule).
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    for file in collect_rs_files(root) {
        let rel: String = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        files.push((rel, source));
    }
    lint_files(&files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // -- no-random-order-collections ------------------------------------

    #[test]
    fn hashmap_in_deterministic_crate_is_flagged() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }";
        let findings = lint_source("crates/netmodel/src/planted.rs", src);
        assert_eq!(
            rules_of(&findings),
            vec!["no-random-order-collections"; 2]
        );
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].hint.contains("DetMap"));
    }

    #[test]
    fn hashmap_outside_deterministic_crates_is_fine() {
        let src = "use std::collections::HashMap;";
        assert!(lint_source("crates/detlint/src/x.rs", src).is_empty());
        assert!(lint_source("crates/substrate/src/x.rs", src).is_empty());
    }

    // -- no-wall-clock ---------------------------------------------------

    #[test]
    fn instant_is_flagged_outside_allowlist() {
        let src = "let t = Instant::now();";
        let findings = lint_source("crates/simnet/src/clock.rs", src);
        assert_eq!(rules_of(&findings), vec!["no-wall-clock"]);
    }

    #[test]
    fn wall_clock_allowlist_paths_pass() {
        let src = "let t = Instant::now(); std::thread::spawn(f);";
        assert!(lint_source("crates/substrate/src/benchkit.rs", src).is_empty());
        assert!(lint_source("crates/substrate/src/sync.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/bin/figures.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_is_flagged_but_thread_module_alone_is_not() {
        let flagged = lint_source("src/lib.rs", "std::thread::spawn(|| {});");
        assert_eq!(rules_of(&flagged), vec!["no-wall-clock"]);
        // `thread::sleep` etc. are not wall-clock reads per se; only spawn
        // introduces scheduler nondeterminism under this rule.
        let ok = lint_source("src/lib.rs", "thread::current();");
        assert!(ok.is_empty());
    }

    // -- no-os-entropy ---------------------------------------------------

    #[test]
    fn os_entropy_is_flagged_outside_substrate_rng() {
        for ident in ["OsRng", "thread_rng", "from_entropy", "RandomState"] {
            let src = format!("use x::{ident};");
            let findings = lint_source("crates/workload/src/gen.rs", &src);
            assert_eq!(rules_of(&findings), vec!["no-os-entropy"], "{ident}");
        }
        assert!(lint_source("crates/substrate/src/rng.rs", "use x::OsRng;").is_empty());
    }

    // -- no-unsafe -------------------------------------------------------

    #[test]
    fn unsafe_is_flagged_everywhere() {
        let src = "fn f() { unsafe { g() } }";
        for path in [
            "crates/netmodel/src/x.rs",
            "crates/substrate/src/x.rs",
            "crates/bench/src/x.rs",
        ] {
            let findings = lint_source(path, src);
            assert_eq!(rules_of(&findings), vec!["no-unsafe"], "{path}");
        }
    }

    // -- panic-policy ----------------------------------------------------

    #[test]
    fn bare_unwrap_in_hot_path_is_flagged() {
        let src = "fn apply() { let v = m.get(&k).unwrap(); }";
        let findings = lint_source("crates/cicero-core/src/ctrl.rs", src);
        assert_eq!(rules_of(&findings), vec!["panic-policy"]);
        // Same code outside a hot path: fine.
        assert!(lint_source("crates/workload/src/gen.rs", src).is_empty());
    }

    #[test]
    fn expect_with_reason_passes_without_one_fails() {
        let hot = "crates/bft/src/replica.rs";
        assert!(lint_source(hot, "v.expect(\"quorum cert verified above\");").is_empty());
        let findings = lint_source(hot, "v.expect(\"\"); w.expect(reason_var);");
        assert_eq!(rules_of(&findings), vec!["panic-policy"; 2]);
    }

    #[test]
    fn unwrap_inside_cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(lint_source("crates/controller/src/plan.rs", src).is_empty());
    }

    #[test]
    fn todo_macro_in_hot_path_is_flagged() {
        let findings = lint_source("crates/controller/src/plan.rs", "fn f() { todo!() }");
        assert_eq!(rules_of(&findings), vec!["panic-policy"]);
    }

    // -- literals and comments never trigger -----------------------------

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = "// HashMap, Instant, unsafe, unwrap()\n\
                   /* thread::spawn OsRng */\n\
                   let s = \"HashMap Instant unsafe\";\n\
                   let r = r#\"thread_rng() RandomState\"#;";
        assert!(lint_source("crates/netmodel/src/doc.rs", src).is_empty());
    }

    // -- escape hatch ----------------------------------------------------

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let same = "let m: HashMap<u8, u8> = x; // detlint::allow(no-random-order-collections): fixture";
        assert!(lint_source("crates/simnet/src/x.rs", same).is_empty());
        let above =
            "// detlint::allow(no-random-order-collections): fixture\nlet m: HashMap<u8, u8> = x;";
        assert!(lint_source("crates/simnet/src/x.rs", above).is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected_and_suppresses_nothing() {
        let src = "// detlint::allow(no-random-order-collections)\nlet m: HashMap<u8, u8> = x;";
        let findings = lint_source("crates/simnet/src/x.rs", src);
        let mut rules = rules_of(&findings);
        rules.sort_unstable();
        assert_eq!(rules, vec!["malformed-allow", "no-random-order-collections"]);
    }

    #[test]
    fn allow_for_unknown_rule_is_malformed() {
        let src = "// detlint::allow(no-such-rule): because";
        let findings = lint_source("crates/simnet/src/x.rs", src);
        assert_eq!(rules_of(&findings), vec!["malformed-allow"]);
    }

    #[test]
    fn unused_allow_is_stale() {
        let src = "// detlint::allow(no-unsafe): leftover from a refactor\nfn f() {}";
        let findings = lint_source("crates/simnet/src/x.rs", src);
        assert_eq!(rules_of(&findings), vec!["stale-allow"]);
    }

    #[test]
    fn allow_does_not_reach_two_lines_down() {
        let src = "// detlint::allow(no-unsafe): too far\n\nfn f() { unsafe {} }";
        let findings = lint_source("crates/simnet/src/x.rs", src);
        let mut rules = rules_of(&findings);
        rules.sort_unstable();
        assert_eq!(rules, vec!["no-unsafe", "stale-allow"]);
    }

    #[test]
    fn allow_only_suppresses_its_named_rule() {
        let src = "// detlint::allow(no-wall-clock): wrong rule named\nlet m: HashMap<u8, u8> = x;";
        let findings = lint_source("crates/simnet/src/x.rs", src);
        let mut rules = rules_of(&findings);
        rules.sort_unstable();
        assert_eq!(rules, vec!["no-random-order-collections", "stale-allow"]);
    }
}
