//! Protocol-flow rules: cross-file analyses over the whole workspace's
//! parsed token streams ([`crate::parse`]).
//!
//! Three rule families (DESIGN.md §5):
//!
//! * **Coverage** — every `Net` variant constructed anywhere must have a
//!   match arm in a `ctrl/` or `switch.rs` handler
//!   (`net-variant-unhandled`); every `Obs` variant emitted through
//!   `observe(..)` must be consumed by `simcheck/src/oracle.rs` or a
//!   function transitively called from it (`obs-variant-unaudited`); every
//!   `WalRecord` variant appended must have a replay arm in
//!   `ctrl/durable.rs` (`wal-variant-unreplayed`). Findings anchor at the
//!   variant *declaration* — that is where an allow belongs — and name a
//!   representative construction/emission site.
//! * **Write-ahead ordering** — a handler that both appends to the WAL and
//!   sends an ack/receipt must append first (`write-ahead-ordering`).
//!   Token-ordering with one-level call inlining on the append side:
//!   branches are not modeled, so an append anywhere earlier in the body
//!   satisfies the rule (heuristic, fail-closed on the common shapes).
//! * **Actor safety** (`crates/cicero-node/` only) — no blocking channel
//!   receive inside a message handler and no lock guard held across a
//!   send/receive (`actor-blocking`); lock acquisition order over
//!   `substrate::sync` guards must be cycle-free (`lock-order-cycle`).
//!
//! Everything here is deliberately name-based (no type resolution): the
//! analysis over-approximates *uses* and under-approximates *handlers*,
//! so ambiguity surfaces as a finding to be fixed or allowed, never as a
//! silently-passed hole in the easy direction.

use crate::lex::{Tok, Token};
use crate::parse::{calls_in, ident_at, punct_at, skip_balanced, FileIndex};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// The protocol alphabets the coverage rules track.
pub const TRACKED_ENUMS: &[&str] = &["Net", "Obs", "WalRecord"];

/// Files that may legitimately *handle* `Net` messages.
fn is_handler_file(path: &str) -> bool {
    path.contains("/ctrl/") || path.ends_with("switch.rs")
}

/// The oracle registry: the roots of the `Obs` consumption closure.
fn is_oracle_file(path: &str) -> bool {
    path.ends_with("simcheck/src/oracle.rs")
}

/// The WAL replay site.
fn is_replay_file(path: &str) -> bool {
    path.ends_with("ctrl/durable.rs")
}

/// The threaded runtime the actor-safety rules police.
fn is_node_file(path: &str) -> bool {
    path.starts_with("crates/cicero-node/")
}

/// WAL-append entry points (the one-level inlining base).
const APPEND_FNS: &[&str] = &["log_record", "persist_journal", "record_delivery"];

/// `Net` variants that acknowledge a durable fact to a peer: the write-ahead
/// rule demands the matching WAL append dominates these sends.
const ACK_VARIANTS: &[&str] = &["AckMsg", "BoundaryRelease", "SyncReply"];

/// Send entry points scanned for ack payloads.
const SEND_FNS: &[&str] = &["send", "send_delayed"];

/// Blocking channel operations (substrate::sync receivers).
const BLOCKING_FNS: &[&str] = &["recv", "recv_timeout"];

/// Operations that must not run under a held lock guard: channel sends can
/// park on a full bounded mailbox, receives block outright.
const UNDER_LOCK_FORBIDDEN: &[&str] = &["send", "try_send", "recv", "recv_timeout"];

/// Runs every flow rule over the indexed file set. Findings are raw — the
/// caller applies `detlint::allow` suppression per anchor file.
pub fn apply_flow_rules(files: &[FileIndex]) -> Vec<Finding> {
    let decls = declared_variants(files);
    let mut out = Vec::new();
    net_coverage(files, &decls, &mut out);
    obs_coverage(files, &decls, &mut out);
    wal_coverage(files, &decls, &mut out);
    write_ahead(files, &mut out);
    actor_safety(files, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.dedup_by(|a, b| (&a.file, a.line, a.rule) == (&b.file, b.line, b.rule));
    out
}

/// One declared variant of a tracked enum: where an allow belongs.
struct Decl {
    name: String,
    file: String,
    line: u32,
}

/// Merges every definition of each tracked enum across the file set (the
/// real workspace has exactly one each; meta-tests plant their own).
fn declared_variants(files: &[FileIndex]) -> BTreeMap<String, Vec<Decl>> {
    let mut map: BTreeMap<String, Vec<Decl>> = BTreeMap::new();
    for f in files {
        for e in &f.enums {
            if !TRACKED_ENUMS.contains(&e.name.as_str()) {
                continue;
            }
            let list = map.entry(e.name.clone()).or_default();
            for v in &e.variants {
                if list.iter().any(|d| d.name == v.name) {
                    continue;
                }
                list.push(Decl {
                    name: v.name.clone(),
                    file: f.path.clone(),
                    line: v.line,
                });
            }
        }
    }
    map
}

// ---------------------------------------------------------------------------
// Coverage family
// ---------------------------------------------------------------------------

fn net_coverage(files: &[FileIndex], decls: &BTreeMap<String, Vec<Decl>>, out: &mut Vec<Finding>) {
    let Some(variants) = decls.get("Net") else { return };
    let mut handled: BTreeSet<&str> = BTreeSet::new();
    let mut constructed: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for f in files {
        for u in &f.uses {
            if u.enum_name != "Net" {
                continue;
            }
            if u.is_match_arm {
                if is_handler_file(&f.path) {
                    handled.insert(&u.variant);
                }
            } else {
                constructed.entry(&u.variant).or_insert((&f.path, u.line));
            }
        }
    }
    for v in variants {
        if handled.contains(v.name.as_str()) {
            continue;
        }
        let Some((cf, cl)) = constructed.get(v.name.as_str()) else { continue };
        out.push(Finding {
            file: v.file.clone(),
            line: v.line,
            rule: "net-variant-unhandled",
            message: format!(
                "`Net::{}` is constructed at {cf}:{cl} but no ctrl/ or switch.rs \
                 handler has a match arm for it (a catch-all `_` does not count)",
                v.name
            ),
            hint: "add an explicit handler arm in crates/cicero-core/src/ctrl/ or \
                   switch.rs, or allow at this variant declaration with a reason",
        });
    }
}

fn obs_coverage(files: &[FileIndex], decls: &BTreeMap<String, Vec<Decl>>, out: &mut Vec<Finding>) {
    let Some(variants) = decls.get("Obs") else { return };
    // Emissions: `observe(Obs::V ...)` anywhere.
    let mut emitted: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for f in files {
        for u in &f.uses {
            if u.enum_name != "Obs" || u.is_match_arm || u.token < 2 {
                continue;
            }
            if punct_at(f.tokens, u.token - 1, '(')
                && ident_at(f.tokens, u.token - 2) == Some("observe")
            {
                emitted.entry(&u.variant).or_insert((&f.path, u.line));
            }
        }
    }
    // Consumption: any `Obs::V` occurrence inside an oracle.rs function or
    // anything transitively called from one (name-based closure — an
    // over-approximation, which for *consumption* is the safe direction).
    let mut fn_map: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (xi, fd) in f.fns.iter().enumerate() {
            fn_map.entry(fd.name.as_str()).or_default().push((fi, xi));
        }
    }
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    let mut queue: Vec<&str> = Vec::new();
    for f in files.iter().filter(|f| is_oracle_file(&f.path)) {
        for fd in &f.fns {
            if visited.insert(fd.name.as_str()) {
                queue.push(fd.name.as_str());
            }
        }
    }
    let mut consumed: BTreeSet<&str> = BTreeSet::new();
    while let Some(name) = queue.pop() {
        for &(fi, xi) in fn_map.get(name).into_iter().flatten() {
            let f = &files[fi];
            let fd = &f.fns[xi];
            for u in &f.uses {
                if u.enum_name == "Obs" && u.token > fd.body_start && u.token < fd.body_end {
                    consumed.insert(&u.variant);
                }
            }
            for (callee, _) in calls_in(f.tokens, fd.body_start, fd.body_end) {
                if let Some((key, _)) = fn_map.get_key_value(callee.as_str()) {
                    if visited.insert(key) {
                        queue.push(key);
                    }
                }
            }
        }
    }
    for v in variants {
        if consumed.contains(v.name.as_str()) {
            continue;
        }
        let Some((ef, el)) = emitted.get(v.name.as_str()) else { continue };
        out.push(Finding {
            file: v.file.clone(),
            line: v.line,
            rule: "obs-variant-unaudited",
            message: format!(
                "`Obs::{}` is emitted at {ef}:{el} but no oracle in \
                 crates/simcheck/src/oracle.rs consumes it",
                v.name
            ),
            hint: "add an oracle check over the variant (simcheck judges every \
                   run by it), or allow at this variant declaration with a reason",
        });
    }
}

fn wal_coverage(files: &[FileIndex], decls: &BTreeMap<String, Vec<Decl>>, out: &mut Vec<Finding>) {
    let Some(variants) = decls.get("WalRecord") else { return };
    let mut replayed: BTreeSet<&str> = BTreeSet::new();
    let mut appended: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for f in files {
        for u in &f.uses {
            if u.enum_name != "WalRecord" {
                continue;
            }
            if u.is_match_arm {
                if is_replay_file(&f.path) {
                    replayed.insert(&u.variant);
                }
            } else {
                appended.entry(&u.variant).or_insert((&f.path, u.line));
            }
        }
    }
    for v in variants {
        if replayed.contains(v.name.as_str()) {
            continue;
        }
        let Some((af, al)) = appended.get(v.name.as_str()) else { continue };
        out.push(Finding {
            file: v.file.clone(),
            line: v.line,
            rule: "wal-variant-unreplayed",
            message: format!(
                "`WalRecord::{}` is appended at {af}:{al} but crash recovery in \
                 ctrl/durable.rs has no replay arm for it",
                v.name
            ),
            hint: "replay the record in ctrl/durable.rs (a logged fact that is \
                   not replayed is silently lost on restart), or allow with a reason",
        });
    }
}

// ---------------------------------------------------------------------------
// Write-ahead ordering
// ---------------------------------------------------------------------------

fn write_ahead(files: &[FileIndex], out: &mut Vec<Finding>) {
    // One-level inlining on the append side: a function whose body calls a
    // base append entry point counts as an appender itself.
    let mut appenders: BTreeSet<String> =
        APPEND_FNS.iter().map(|s| s.to_string()).collect();
    for f in files {
        for fd in &f.fns {
            if calls_in(f.tokens, fd.body_start, fd.body_end)
                .iter()
                .any(|(n, _)| APPEND_FNS.contains(&n.as_str()))
            {
                appenders.insert(fd.name.clone());
            }
        }
    }
    for f in files.iter().filter(|f| is_handler_file(&f.path)) {
        for fd in &f.fns {
            let calls = calls_in(f.tokens, fd.body_start, fd.body_end);
            let appends: Vec<usize> = calls
                .iter()
                .filter(|(n, _)| appenders.contains(n))
                .map(|&(_, i)| i)
                .collect();
            if appends.is_empty() {
                continue; // not a write-ahead handler: nothing to order
            }
            for (name, i) in calls.iter().filter(|(n, _)| SEND_FNS.contains(&n.as_str())) {
                let Some(ack) = ack_payload(f.tokens, *i + 1) else { continue };
                if !appends.iter().any(|&a| a < *i) {
                    out.push(Finding {
                        file: f.path.clone(),
                        line: f.tokens[*i].line,
                        rule: "write-ahead-ordering",
                        message: format!(
                            "`{}` sends `Net::{ack}` before `{}` appends the fact to \
                             the WAL — a crash between send and append forgets what \
                             was just acknowledged",
                            name, fd.name
                        ),
                        hint: "append the WalRecord (log_record / persist_journal / \
                               record_delivery) before the ack/receipt send, or allow \
                               with a reason",
                    });
                }
            }
        }
    }
}

/// The ack variant inside a send call's argument list, if any. `open` must
/// index the `(` after the send identifier.
fn ack_payload(tokens: &[Token], open: usize) -> Option<String> {
    if !punct_at(tokens, open, '(') {
        return None;
    }
    let end = skip_balanced(tokens, open);
    for j in open..end {
        if ident_at(tokens, j) == Some("Net")
            && punct_at(tokens, j + 1, ':')
            && punct_at(tokens, j + 2, ':')
        {
            if let Some(v) = ident_at(tokens, j + 3) {
                if ACK_VARIANTS.contains(&v) {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Actor safety (cicero-node)
// ---------------------------------------------------------------------------

/// How far a lock guard born at one acquisition stays live (token index of
/// the first token past its life).
enum GuardScope {
    /// `let g = x.lock();` — to the end of the enclosing block, or an
    /// explicit `drop(g)`.
    Let(Option<String>),
    /// `if let` / `while let` / `match` scrutinee — Rust extends scrutinee
    /// temporaries across the whole following block.
    Block,
    /// Plain expression statement — to the statement's `;`.
    Statement,
}

struct Acquisition {
    /// Token index of the `lock`/`read`/`write` identifier.
    token: usize,
    /// The identifier the guard was taken on (`self.obs.lock()` → `obs`),
    /// when recoverable.
    lock_name: Option<String>,
    line: u32,
    /// Token index one past the guard's live range.
    end: usize,
}

/// Finds every `.lock()` / `.read()` / `.write()` (argument-less, so file
/// I/O like `f.read(&mut buf)` never matches) in a body and computes how
/// long its guard lives.
fn acquisitions(tokens: &[Token], body_start: usize, body_end: usize) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in body_start..body_end.min(tokens.len()) {
        let Some(m) = ident_at(tokens, i) else { continue };
        if !matches!(m, "lock" | "read" | "write")
            || !punct_at(tokens, i.wrapping_sub(1), '.')
            || !punct_at(tokens, i + 1, '(')
            || !punct_at(tokens, i + 2, ')')
        {
            continue;
        }
        // Statement start: the token after the nearest `;` / `{` / `}`.
        let mut b = i;
        while b > body_start {
            if matches!(tokens[b - 1].tok, Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}')) {
                break;
            }
            b -= 1;
        }
        let scope = match ident_at(tokens, b) {
            Some("let") => {
                let name_at = if ident_at(tokens, b + 1) == Some("mut") { b + 2 } else { b + 1 };
                GuardScope::Let(ident_at(tokens, name_at).map(str::to_string))
            }
            Some("if") | Some("while") | Some("match") => GuardScope::Block,
            _ => GuardScope::Statement,
        };
        out.push(Acquisition {
            token: i,
            lock_name: if i >= 2 { ident_at(tokens, i - 2).map(str::to_string) } else { None },
            line: tokens[i].line,
            end: guard_end(tokens, i + 3, body_end, &scope),
        });
    }
    out
}

fn guard_end(tokens: &[Token], from: usize, body_end: usize, scope: &GuardScope) -> usize {
    let mut depth: i32 = 0;
    let mut entered_block = false;
    let mut j = from;
    while j < body_end.min(tokens.len()) {
        match &tokens[j].tok {
            Tok::Punct('{') => {
                if depth == 0 {
                    entered_block = true;
                }
                depth += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j; // enclosing block closed: every scope ends
                }
                if matches!(scope, GuardScope::Block) && entered_block && depth == 0 {
                    return j;
                }
            }
            Tok::Punct(';') if depth == 0 && matches!(scope, GuardScope::Statement) => {
                return j;
            }
            Tok::Ident(id) if id == "drop" => {
                if let GuardScope::Let(Some(name)) = scope {
                    if punct_at(tokens, j + 1, '(') && ident_at(tokens, j + 2) == Some(name) {
                        return j;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    body_end
}

fn actor_safety(files: &[FileIndex], out: &mut Vec<Finding>) {
    // Map of cicero-node-defined functions for one-level handler inlining.
    let mut node_fns: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !is_node_file(&f.path) {
            continue;
        }
        for (xi, fd) in f.fns.iter().enumerate() {
            node_fns.entry(fd.name.as_str()).or_default().push((fi, xi));
        }
    }
    let blocks_directly = |fi: usize, xi: usize| -> bool {
        let f = &files[fi];
        let fd = &f.fns[xi];
        calls_in(f.tokens, fd.body_start, fd.body_end)
            .iter()
            .any(|(n, _)| BLOCKING_FNS.contains(&n.as_str()))
    };

    // Lock-order edges across the whole runtime: guard A live at the
    // acquisition of B. Collected here, judged below.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();

    for f in files.iter() {
        if !is_node_file(&f.path) {
            continue;
        }
        for fd in f.fns.iter() {
            let is_handler = fd.name.starts_with("on_") || fd.name.starts_with("handle");
            if is_handler {
                for (callee, i) in calls_in(f.tokens, fd.body_start, fd.body_end) {
                    if BLOCKING_FNS.contains(&callee.as_str()) {
                        out.push(Finding {
                            file: f.path.clone(),
                            line: f.tokens[i].line,
                            rule: "actor-blocking",
                            message: format!(
                                "blocking `{callee}()` inside message handler \
                                 `{}` — an actor that blocks on a channel in its \
                                 handler deadlocks the mailbox",
                                fd.name
                            ),
                            hint: "handlers must only buffer effects; blocking \
                                   receives belong in the actor's run loop",
                        });
                    } else if let Some(sites) = node_fns.get(callee.as_str()) {
                        if sites.iter().any(|&(cfi, cxi)| blocks_directly(cfi, cxi)) {
                            out.push(Finding {
                                file: f.path.clone(),
                                line: f.tokens[i].line,
                                rule: "actor-blocking",
                                message: format!(
                                    "message handler `{}` calls `{callee}`, which \
                                     performs a blocking channel receive",
                                    fd.name
                                ),
                                hint: "handlers must only buffer effects; blocking \
                                       receives belong in the actor's run loop",
                            });
                        }
                    }
                }
            }
            let acqs = acquisitions(f.tokens, fd.body_start, fd.body_end);
            for a in &acqs {
                for (callee, i) in calls_in(f.tokens, a.token + 3, a.end) {
                    if UNDER_LOCK_FORBIDDEN.contains(&callee.as_str()) {
                        out.push(Finding {
                            file: f.path.clone(),
                            line: f.tokens[i].line,
                            rule: "actor-blocking",
                            message: format!(
                                "`{callee}()` while the `{}` guard acquired at line \
                                 {} is still live — channel operations can park \
                                 with the lock held",
                                a.lock_name.as_deref().unwrap_or("<lock>"),
                                a.line
                            ),
                            hint: "scope the guard (inner block or drop(guard)) so \
                                   it is released before any channel send/receive",
                        });
                    }
                }
                for b in &acqs {
                    if b.token > a.token && b.token < a.end {
                        if let (Some(an), Some(bn)) = (&a.lock_name, &b.lock_name) {
                            edges
                                .entry((an.clone(), bn.clone()))
                                .or_insert((f.path.clone(), b.line));
                        }
                    }
                }
            }
        }
    }

    // Reject cycles: an edge (a, b) with a path b →* a means two call
    // stacks can acquire {a, b} in opposite orders and deadlock.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            if let Some(next) = adj.get(x) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for ((a, b), (file, line)) in &edges {
        if reaches(b, a) {
            out.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "lock-order-cycle",
                message: format!(
                    "`{b}` is acquired while `{a}` is held, but the opposite \
                     acquisition order also exists — two threads can deadlock"
                ),
                hint: "pick one global acquisition order for these locks and \
                       restructure the later acquisition out of the guard's scope",
            });
        }
    }
}
