//! A minimal, hand-rolled Rust lexer: just enough to strip comments and
//! string/char literals and hand the rule matchers a clean token stream.
//!
//! Design constraints (shared with the rest of the workspace): zero
//! dependencies — no `syn`, no `proc-macro2` — and total determinism. The
//! lexer is deliberately token-level, not a parser: rules match identifier
//! sequences, which is exactly the granularity at which the forbidden
//! constructs (`HashMap`, `Instant`, `unsafe`, `unwrap()`) appear.
//!
//! Comments are not discarded blindly: they are scanned for
//! `detlint::allow(rule): reason` escape-hatch directives first.

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `unsafe`, `thread`, ...).
    Ident(String),
    /// A string literal's contents (cooked, raw, or byte). Kept as a token
    /// so rules can check `expect("reason")` arguments, but its *contents*
    /// never match identifier rules.
    Str(String),
    /// Any other single non-whitespace character.
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `detlint::allow(rule): reason` escape-hatch directive found in a
/// comment. The directive suppresses findings for `rule` on its own line
/// and on the following line — and it *requires* a non-empty reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Directive {
    /// The rule id inside the parentheses.
    pub rule: String,
    /// The reason after the colon, if present and non-empty.
    pub reason: Option<String>,
    /// 1-based line the directive appears on.
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Comment- and literal-stripped token stream.
    pub tokens: Vec<Token>,
    /// All escape-hatch directives found in comments.
    pub directives: Vec<Directive>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans one comment line for an escape-hatch directive. The directive must
/// *lead* the comment (only comment punctuation and whitespace before it),
/// so prose that merely mentions the syntax — like this doc comment — is
/// never mistaken for a real directive.
fn scan_directives(text: &str, line: u32, out: &mut Vec<Directive>) {
    const MARKER: &str = "detlint::allow(";
    let lead = text
        .trim_start_matches(|c: char| c == '/' || c == '*' || c == '!' || c.is_whitespace());
    let Some(after) = lead.strip_prefix(MARKER) else {
        return;
    };
    let Some(close) = after.find(')') else {
        return;
    };
    let rule = after[..close].trim().to_string();
    let tail = &after[close + 1..];
    let reason = tail
        .strip_prefix(':')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    out.push(Directive { rule, reason, line });
}

/// Lexes `source` into tokens + directives. Never fails: unterminated
/// literals simply consume to end-of-file (the compiler is the authority on
/// well-formedness; the linter only needs to never misclassify).
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut tokens = Vec::new();
    let mut directives = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            scan_directives(&text, line, &mut directives);
            continue;
        }
        // Block comment, with nesting (Rust block comments nest).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            let mut cur_line_text = String::from("/*");
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    cur_line_text.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    cur_line_text.push_str("*/");
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        scan_directives(&cur_line_text, line, &mut directives);
                        cur_line_text.clear();
                        line += 1;
                    } else {
                        cur_line_text.push(chars[i]);
                    }
                    i += 1;
                }
            }
            scan_directives(&cur_line_text, line, &mut directives);
            continue;
        }
        // Cooked string literal.
        if c == '"' {
            let start_line = line;
            i += 1;
            let mut s = String::new();
            while i < n {
                match chars[i] {
                    '\\' => {
                        // Skip the escaped character (good enough: we only
                        // care about emptiness and never re-emit contents).
                        if i + 1 < n && chars[i + 1] == '\n' {
                            line += 1;
                        }
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        s.push(ch);
                        i += 1;
                    }
                }
            }
            tokens.push(Token {
                tok: Tok::Str(s),
                line: start_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let j = i + 1;
            if j < n && chars[j] == '\\' {
                // Escaped char literal: consume to the closing quote.
                let mut k = j;
                while k < n {
                    if chars[k] == '\\' {
                        k += 2;
                    } else if chars[k] == '\'' {
                        k += 1;
                        break;
                    } else {
                        k += 1;
                    }
                }
                i = k;
            } else if j + 1 < n && chars[j + 1] == '\'' {
                // Plain char literal 'x'.
                if chars[j] == '\n' {
                    line += 1;
                }
                i = j + 2;
            } else if j < n && is_ident_start(chars[j]) {
                // Lifetime: consume the identifier, emit nothing.
                let mut k = j;
                while k < n && is_ident_continue(chars[k]) {
                    k += 1;
                }
                i = k;
            } else {
                i += 1;
            }
            continue;
        }
        // Identifier / keyword — possibly a raw/byte string prefix.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            if ident == "b" && next == Some('"') {
                // b"..." — cooked escape semantics; the '"' arm consumes it
                // on the next loop iteration.
                continue;
            }
            if ident == "b" && next == Some('\'') {
                // Byte char literal b'x': the '\'' arm consumes it.
                continue;
            }
            if matches!(ident.as_str(), "r" | "br") && matches!(next, Some('"') | Some('#')) {
                // Raw string r"..." / r#"..."# / br#"..."#.
                let start_line = line;
                let mut hashes = 0;
                while i < n && chars[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if chars.get(i) == Some(&'"') {
                    i += 1;
                    let mut s = String::new();
                    'raw: while i < n {
                        if chars[i] == '"' {
                            // Check for the closing hash run.
                            let mut k = i + 1;
                            let mut seen = 0;
                            while seen < hashes && k < n && chars[k] == '#' {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                i = k;
                                break 'raw;
                            }
                        }
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        s.push(chars[i]);
                        i += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Str(s),
                        line: start_line,
                    });
                    continue;
                }
                // `r#ident` raw identifier. Keep the `r#` marker: a raw
                // identifier is *not* the keyword it spells (`r#unsafe` is a
                // plain binding named "unsafe"), so emitting the bare name
                // would fabricate keyword findings like no-unsafe.
                let id_start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let id: String = chars[id_start..i].iter().collect();
                tokens.push(Token {
                    tok: Tok::Ident(format!("r#{id}")),
                    line,
                });
                continue;
            }
            tokens.push(Token {
                tok: Tok::Ident(ident),
                line,
            });
            continue;
        }
        // Numeric literal: consume and drop (suffixes, hex, underscores).
        if c.is_ascii_digit() {
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            continue;
        }
        tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }

    Lexed { tokens, directives }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
// HashMap in a line comment
/* HashSet in /* a nested */ block comment */
let x = "Instant in a string";
let y = r#"unsafe in a raw string"#;
let z = 'u'; let lt: &'static str = "SystemTime";
fn real_ident() {}
"##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for bad in ["HashMap", "HashSet", "Instant", "unsafe", "SystemTime"] {
            assert!(!ids.contains(&bad.to_string()), "{bad} leaked from a literal");
        }
    }

    #[test]
    fn string_tokens_keep_contents_and_lines() {
        let src = "a\n.expect(\"the reason\");";
        let lexed = lex(src);
        let strs: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![("the reason".to_string(), 2)]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The lifetime name never shows up as a stray token stream break.
        assert_eq!(ids.iter().filter(|s| *s == "a").count(), 0);
    }

    #[test]
    fn directive_with_reason() {
        let src = "// detlint::allow(no-unsafe): FFI boundary, audited 2026-08\nunsafe {}";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 1);
        let d = &lexed.directives[0];
        assert_eq!(d.rule, "no-unsafe");
        assert_eq!(d.line, 1);
        assert!(d.reason.as_deref().is_some_and(|r| r.contains("audited")));
    }

    #[test]
    fn directive_without_reason_has_none() {
        for src in [
            "// detlint::allow(no-unsafe)",
            "// detlint::allow(no-unsafe):",
            "// detlint::allow(no-unsafe):   ",
        ] {
            let lexed = lex(src);
            assert_eq!(lexed.directives.len(), 1, "{src}");
            assert_eq!(lexed.directives[0].reason, None, "{src}");
        }
    }

    #[test]
    fn directive_in_block_comment_multiline() {
        let src = "/* line one\n detlint::allow(no-wall-clock): bench-only \n*/";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 1);
        assert_eq!(lexed.directives[0].line, 2);
    }

    // -- raw-string edge cases -------------------------------------------
    // The flow rules parse item structure from this token stream, so a raw
    // string that leaks contents (or swallows following code) would corrupt
    // every downstream analysis, not just one finding.

    #[test]
    fn raw_string_hash_runs_terminate_exactly() {
        // Interior `"#` runs shorter than the opener must not close r##"..."##.
        let src = r####"let a = r##"quote "# inside"##; unsafe {}"####;
        let lexed = lex(src);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r##"quote "# inside"##]);
        assert!(idents(src).contains(&"unsafe".to_string()), "code after the raw string lexes");
    }

    #[test]
    fn raw_string_without_hashes_and_byte_raw_strings() {
        // r"..." (zero hashes) closes at the first quote; `#` inside stays.
        assert_eq!(
            lex(r#"let a = r"x # y";"#)
                .tokens
                .iter()
                .filter_map(|t| match &t.tok {
                    Tok::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect::<Vec<_>>(),
            vec!["x # y".to_string()]
        );
        // br#"..."# byte raw strings take the same path.
        let ids = idents(r##"let b = br#"HashMap unsafe"#; fn tail() {}"##);
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
    }

    #[test]
    fn raw_string_multiline_counts_lines() {
        let src = "let a = r#\"one\ntwo\"#;\nfn after() {}";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("after".to_string()))
            .expect("after ident present");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn raw_identifiers_are_not_keywords() {
        // `r#unsafe` is a *binding named "unsafe"*, not the unsafe keyword;
        // emitting the bare name fabricated no-unsafe findings.
        let ids = idents("let r#unsafe = 1; let r#match = r#unsafe;");
        assert!(!ids.contains(&"unsafe".to_string()), "raw ident leaked as keyword");
        assert!(!ids.contains(&"match".to_string()));
        assert_eq!(ids.iter().filter(|s| *s == "r#unsafe").count(), 2);
        // A plain `r` binding is untouched by the raw-prefix sniffing.
        assert!(idents("let r = 5;").contains(&"r".to_string()));
    }

    // -- nested block comment edge cases ---------------------------------

    #[test]
    fn nested_comment_openers_and_closers_pair_like_rustc() {
        // `/*/` opens without closing (the `/` is content); `/**/` both
        // opens and closes; overlapping `* /*` runs must not double-count.
        for (src, visible) in [
            ("/* a /* b */ c */ fn x() {}", "x"),
            ("/*/ still a comment */ fn y() {}", "y"),
            ("/* /**/ */ fn z() {}", "z"),
            ("/* /* /* deep */ */ unsafe */ fn w() {}", "w"),
            ("/** doc-style ** with stars **/ fn v() {}", "v"),
        ] {
            let ids = idents(src);
            assert!(ids.contains(&visible.to_string()), "{src}: code after comment lost");
            assert!(!ids.contains(&"unsafe".to_string()), "{src}: comment text leaked");
            assert!(
                !ids.iter().any(|s| s == "a" || s == "b" || s == "c" || s == "deep"),
                "{src}: comment text leaked"
            );
        }
    }

    #[test]
    fn unterminated_nested_comment_consumes_to_eof() {
        // Depth never returns to zero: everything after is comment, exactly
        // as rustc treats it (it would be a compile error; the linter must
        // simply not misclassify the text as code).
        assert!(idents("/* open /* deeper */ still open... unsafe").is_empty());
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\nthree\";\nfn after() {}";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("after".to_string()))
            .expect("after ident present");
        assert_eq!(after.line, 4);
    }
}
