//! # Cicero — Consistent and Secure Network Updates Made Practical
//!
//! A from-scratch Rust reproduction of *Cicero* (Lembke, Ravi, Roman,
//! Eugster — Middleware '20): a control-plane middleware for SD-WAN that
//! makes network updates **consistent** (scheduler-ordered, transient-error
//! free) and **secure** (applied only under a Byzantine quorum's threshold
//! BLS signature) while staying **practical** (update domains, intra-domain
//! parallelism, optional controller-side signature aggregation).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Crate | Provides |
//! |---|---|
//! | [`blscrypto`] | BLS12-381, threshold BLS, Shamir, Feldman VSS, DKG, resharing |
//! | [`simnet`] | deterministic discrete-event network simulator |
//! | [`southbound`] | signed OpenFlow-like message layer |
//! | [`netmodel`] | topologies, routing, flow tables, link loads |
//! | [`bft`] | PBFT atomic broadcast (sans-io) |
//! | [`controller`] | apps, schedulers, domains, membership, failure detection |
//! | [`cicero_core`] | the Cicero protocol engine and experiment drivers |
//! | [`workload`] | Facebook-style Hadoop / web-server workloads |
//!
//! ## Quickstart
//!
//! ```
//! use cicero::prelude::*;
//!
//! // A single-pod fabric under the full Cicero protocol.
//! let cfg = EngineConfig::for_mode(Mode::Cicero { aggregation: Aggregation::Switch });
//! let topo = Topology::single_pod(4, 2, 2);
//! let dm = DomainMap::single(&topo);
//! let mut engine = Engine::build(cfg, topo, dm, 0);
//! engine.run(SimTime::ZERO + SimDuration::from_secs(1));
//! assert!(engine.observations().is_empty()); // no flows injected yet
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment harness regenerating every figure of the paper's evaluation.

#![forbid(unsafe_code)]


pub use bft;
pub use blscrypto;
pub use cicero_core;
pub use controller;
pub use netmodel;
pub use simnet;
pub use southbound;
pub use workload;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use cicero_core::prelude::*;
    pub use controller::prelude::{
        DomainMap, FirewallPolicy, GlobalDomainPolicy, ReversePathScheduler, UnorderedScheduler,
    };
    pub use netmodel::prelude::{route, Topology};
    pub use southbound::types::*;
    pub use workload::prelude::*;
}
