//! Quickstart: a single-pod fabric under the full Cicero protocol.
//!
//! Builds a 4-rack pod with a 4-controller Byzantine-tolerant control
//! plane, sends a handful of flows, and prints what the protocol did:
//! events ordered, updates quorum-signed and applied downstream-first,
//! flows completed.
//!
//! Run with: `cargo run --example quickstart`

use cicero::prelude::*;
use substrate::rng::{SeedableRng, StdRng};

fn main() {
    // 1. The deployment: one pod (4 racks x 4 edge switches, 4 hosts per
    //    rack), one update domain, 4 controllers, switch-side aggregation.
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Real; // real BLS threshold signatures
    let topo = Topology::single_pod(4, 4, 4);
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);

    // 2. A small workload: 20 Hadoop-profile flows.
    let mut spec = hadoop();
    spec.flows = 20;
    let flows = generate(&topo, &spec, &mut StdRng::seed_from_u64(42));
    engine.inject_flows(&flows);

    // 3. Run the simulation.
    engine.run(SimTime::ZERO + SimDuration::from_secs(60));

    // 4. Report.
    let obs = engine.observations();
    let completed: Vec<_> = obs
        .iter()
        .filter_map(|o| match o.value {
            Obs::FlowCompleted { flow, start } => Some((flow, o.at.since(start))),
            _ => None,
        })
        .collect();
    let events = obs
        .iter()
        .filter(|o| matches!(o.value, Obs::EventProcessed { .. }))
        .count();
    let updates = obs
        .iter()
        .filter(|o| matches!(o.value, Obs::UpdateApplied { .. }))
        .count();
    let rejected = obs
        .iter()
        .filter(|o| matches!(o.value, Obs::UpdateRejected { .. }))
        .count();

    println!("Cicero quickstart — single pod, 4 controllers (t = 1, quorum = 2)");
    println!("  flows injected      : {}", flows.len());
    println!("  flows completed     : {}", completed.len());
    println!("  events agreed (BFT) : {events}");
    println!("  updates applied     : {updates} (all quorum-verified BLS)");
    println!("  updates rejected    : {rejected}");
    let cdf = Cdf::from_latencies(
        &completed.iter().map(|&(_, d)| d).collect::<Vec<_>>(),
    );
    if !cdf.is_empty() {
        println!(
            "  completion latency  : p50 {:.2} ms, p99 {:.2} ms, mean {:.2} ms",
            cdf.quantile(0.5),
            cdf.quantile(0.99),
            cdf.mean()
        );
    }
    assert_eq!(completed.len(), flows.len(), "every flow must complete");
}
