//! Link-failure repair (paper Fig. 2): a flow's route crosses a link that
//! dies; the control plane agrees on the failure event and repairs the
//! route **make-before-break** — the replacement path is installed
//! destination-first, the ingress flips last, and only then are the
//! abandoned rules removed. The replay audit proves no packet could ever
//! have been black-holed or looped by the repair itself.
//!
//! Run with: `cargo run --example link_failure_reroute`

use cicero::prelude::*;
use cicero_core::audit::{audit_flow, ReplayState, WalkOutcome};
use netmodel::topology::{Location, SwitchRole};
use simnet::sim::ENVIRONMENT;

fn main() {
    // The paper's five-switch fabric (Fig. 2): two paths into s5.
    let mut topo = Topology::empty();
    let loc = Location {
        dc: 0,
        pod: 0,
        rack: 0,
    };
    for i in 1..=5 {
        topo.add_switch(SwitchId(i), SwitchRole::TopOfRack, loc);
    }
    let lat = SimDuration::from_micros(20);
    topo.add_link(SwitchId(1), SwitchId(3), lat, 5);
    topo.add_link(SwitchId(2), SwitchId(3), lat, 5);
    topo.add_link(SwitchId(3), SwitchId(4), lat, 5);
    topo.add_link(SwitchId(3), SwitchId(5), lat, 5);
    topo.add_link(SwitchId(4), SwitchId(5), lat, 5);
    topo.add_host(HostId(1), SwitchId(1));
    topo.add_host(HostId(5), SwitchId(5));

    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Real; // genuine threshold signatures throughout
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);

    // 1. Establish the flow h1 → h5 (shortest path s1-s3-s5).
    let (src, dst) = (HostId(1), HostId(5));
    let m = FlowMatch { src, dst };
    let r = route(&topo, src, dst).unwrap();
    println!("initial route: {:?}", r.path);
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    engine.inject_raw(
        start,
        ENVIRONMENT,
        engine.switch_node(r.path[0]),
        Net::FlowArrival {
            flow: FlowId(1),
            src,
            dst,
            bytes: 1000,
            transit: r.latency,
            start,
        },
    );
    engine.run(start + SimDuration::from_secs(10));

    // 2. The s3-s5 link dies; s3 raises a signed LinkFailure event.
    let fail_at = engine.now() + SimDuration::from_millis(5);
    println!("failing link s3-s5 …");
    engine.fail_link(fail_at, SwitchId(3), SwitchId(5));
    engine.run(fail_at + SimDuration::from_secs(10));

    // 3. Audit every intermediate state the repair created.
    let hazards = audit_flow(engine.observations(), SwitchId(1), m, false);
    println!("transient hazards during repair: {}", hazards.len());
    assert!(hazards.is_empty(), "make-before-break must be hazard-free");

    // 4. The final state detours via s4.
    let mut state = ReplayState::new();
    for o in engine.observations() {
        if let Obs::UpdateApplied { switch, kind, .. } = o.value {
            state.apply(switch, kind);
        }
    }
    assert_eq!(state.walk(SwitchId(1), m), WalkOutcome::Delivered(dst));
    println!(
        "s3 now forwards via: {:?}",
        state.rule(SwitchId(3), m).unwrap()
    );
    let removed = engine
        .observations()
        .iter()
        .filter(|o| matches!(o.value, Obs::UpdateApplied { kind: UpdateKind::Remove(_), .. }))
        .count();
    println!("stale rules removed after the flip: {removed}");
    println!("route repaired around the failed link, hazard-free ✓");
}
