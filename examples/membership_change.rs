//! Dynamic control-plane membership (paper §4.3): a fifth controller joins
//! a live 4-controller domain. The join runs the share-redistribution
//! protocol over the network — real DKG-style dealings, real threshold BLS —
//! and the group public key installed on the switches **does not change**,
//! so no switch needs re-keying. Updates keep flowing before and after.
//!
//! Run with: `cargo run --example membership_change`

use cicero::prelude::*;
use substrate::rng::{SeedableRng, StdRng};

fn main() {
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Real;
    let topo = Topology::single_pod(2, 2, 4);
    let dm = DomainMap::single(&topo);
    // One standby controller, ready to be admitted.
    let mut engine = Engine::build(cfg, topo.clone(), dm, 1);
    let domain = DomainId(0);

    let pk_before = engine.shared().keys.domains[&domain].public_key;
    println!("group public key (before): {:02x?}…", &pk_before.to_bytes()[1..9]);

    // Warm up with a few flows under the 4-member control plane.
    let mut spec = hadoop();
    spec.flows = 5;
    let flows = generate(&topo, &spec, &mut StdRng::seed_from_u64(1));
    engine.inject_flows(&flows);
    engine.run(SimTime::ZERO + SimDuration::from_secs(30));
    let completed_before = count_completed(&engine);
    println!("flows completed with n=4 : {completed_before}");

    // The bootstrap controller proposes admitting controller 5.
    let join_at = engine.now() + SimDuration::from_millis(100);
    engine.inject_membership(join_at, domain, OrderedOp::AddController(ControllerId(5)));
    engine.run(join_at + SimDuration::from_secs(5));

    // Every member finished the phase change.
    let phase_changes = engine
        .observations()
        .iter()
        .filter(|o| matches!(o.value, Obs::PhaseChanged { .. }))
        .count();
    println!("controllers that completed the reshare: {phase_changes}");
    assert!(phase_changes >= 5, "all 5 members re-key");

    // The group public key is unchanged (paper: switches never re-key).
    let pk_after = engine.with_controller(domain, ControllerId(5), |c| {
        assert!(c.is_active(), "the joiner is now active");
        assert_eq!(c.view().len(), 5);
        c.group().public_key()
    });
    assert_eq!(pk_before, pk_after, "group public key must be invariant");
    println!("group public key (after) : unchanged ✓  (n=5, quorum={})", 2);

    // New flows complete under the 5-member plane with fresh shares.
    let mut spec = hadoop();
    spec.flows = 5;
    let mut flows = generate(&topo, &spec, &mut StdRng::seed_from_u64(2));
    let offset = engine.now() + SimDuration::from_millis(200);
    for f in flows.iter_mut() {
        f.start = offset + SimDuration::from_nanos(f.start.as_nanos());
    }
    engine.inject_flows(&flows);
    engine.run(engine.now() + SimDuration::from_secs(30));
    let completed_after = count_completed(&engine);
    println!("flows completed total    : {completed_after}");
    assert!(completed_after > completed_before, "updates still flow post-join");
    println!("membership change complete — same key, bigger quorum, no downtime.");
}

fn count_completed(engine: &Engine) -> usize {
    engine
        .observations()
        .iter()
        .filter(|o| matches!(o.value, Obs::FlowCompleted { .. }))
        .count()
}
