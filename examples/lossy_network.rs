//! Reliable delivery under loss: the full Cicero protocol runs over a
//! network that drops 20% of all messages *and* severs the ingress
//! rack's uplink to every controller for the first two seconds. The
//! retransmission layer (signed-event retries, update retries with
//! exponential backoff, NACK-driven state re-sync, ack re-sends) carries
//! every flow to completion once the partition heals; the liveness
//! watchdog's report shows exactly which recovery paths fired.
//!
//! A control run with the reliability layer disabled hits the identical
//! fault schedule and stalls — the watchdog reports the stall instead of
//! spinning forever.
//!
//! Run with: `cargo run --example lossy_network`

use cicero::prelude::*;
use simnet::fault::FaultPlan;
use simnet::sim::ENVIRONMENT;

const DROP: f64 = 0.20;
const PARTITION_SECS: u64 = 2;

fn build(reliability: ReliabilityConfig) -> (Engine, Topology) {
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Modeled;
    cfg.seed = 42;
    cfg.reliability = reliability;
    let topo = Topology::single_pod(4, 2, 2);
    let dm = DomainMap::single(&topo);
    let engine = Engine::build(cfg, topo.clone(), dm, 0);
    (engine, topo)
}

/// 20% uniform loss everywhere, plus a severed window between the first
/// host's ToR switch and all four controllers.
fn inject_faults_and_flows(engine: &mut Engine, topo: &Topology) {
    let hosts = topo.hosts();
    let src = hosts[0].id;
    let ingress = topo.host(src).unwrap().attached;
    let sw = engine.switch_node(ingress);
    let until = SimTime::ZERO + SimDuration::from_secs(PARTITION_SECS);
    let mut plan = FaultPlan::none().with_drop_probability(DROP);
    let n = engine.shared().cfg.controllers_per_domain;
    for c in 1..=n {
        let cn = engine.controller_node(DomainId(0), ControllerId(c));
        plan = plan.with_severed_window(sw, cn, SimTime::ZERO, until);
    }
    engine.set_faults(plan);

    // Three cross-rack flows, the first from inside the partitioned rack.
    let mut id = 0u64;
    for h in hosts {
        if h.attached == ingress {
            continue;
        }
        id += 1;
        let r = route(topo, src, h.id).unwrap();
        let start = SimTime::ZERO + SimDuration::from_millis(id);
        engine.inject_raw(
            start,
            ENVIRONMENT,
            sw,
            Net::FlowArrival {
                flow: FlowId(id),
                src,
                dst: h.id,
                bytes: 1_000,
                transit: r.latency,
                start,
            },
        );
        if id == 3 {
            break;
        }
    }
}

fn main() {
    let horizon = SimTime::ZERO + SimDuration::from_secs(60);

    println!(
        "== with the reliability layer: {:.0}% drop + {PARTITION_SECS}s partition ==",
        DROP * 100.0,
    );
    let (mut engine, topo) = build(ReliabilityConfig::default());
    inject_faults_and_flows(&mut engine, &topo);
    let report = engine.run_reporting(horizon);
    println!("{report}");
    assert!(report.completed, "flows must survive the faults");

    let first_recovery = engine
        .observations()
        .iter()
        .find(|o| {
            matches!(
                o.value,
                Obs::EventRetransmitted { .. } | Obs::UpdateRetransmitted { .. }
            )
        })
        .map(|o| o.at);
    if let Some(at) = first_recovery {
        println!("first retransmission fired at {at:?}");
    }

    println!();
    println!("== control run: identical faults, reliability disabled ==");
    let (mut engine, topo) = build(ReliabilityConfig::disabled());
    inject_faults_and_flows(&mut engine, &topo);
    let report = engine.run_reporting(horizon);
    println!("{report}");
    assert!(report.stalled, "the control run must stall");
    println!();
    println!("retransmission turned a stalled deployment into a live one ✓");
}
