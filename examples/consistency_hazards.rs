//! The consistency hazards of paper Table 1 (Figs. 1–3), demonstrated and
//! then prevented.
//!
//! Two identical deployments handle the same flow on the paper's five-switch
//! example topology. The first uses an **unordered** scheduler (updates race
//! to the switches, like plain OpenFlow); replaying its applied-update
//! sequence exposes a *transient black hole*: the ingress rule lands before
//! the downstream rules, so in-flight packets would be lost. The second runs
//! Cicero's reverse-path scheduler, and the audit finds no hazardous
//! intermediate state. Finally, a firewall policy shows a denied pair is
//! stopped at the ingress, and link-capacity accounting shows the
//! congestion-freedom check of Fig. 3.
//!
//! Run with: `cargo run --example consistency_hazards`

use cicero::prelude::*;
use cicero_core::audit::{audit_flow, WalkOutcome};
use netmodel::linkload::LinkLoad;
use netmodel::topology::{Location, SwitchRole};
use simnet::sim::ENVIRONMENT;

/// The five-switch topology of the paper's Figs. 1–3:
/// s1, s2 on the left, s3 in the middle, s4, s5 on the right.
fn paper_topology() -> Topology {
    let mut t = Topology::empty();
    let loc = Location {
        dc: 0,
        pod: 0,
        rack: 0,
    };
    for i in 1..=5 {
        t.add_switch(SwitchId(i), SwitchRole::TopOfRack, loc);
    }
    let lat = SimDuration::from_micros(20);
    t.add_link(SwitchId(1), SwitchId(3), lat, 5);
    t.add_link(SwitchId(2), SwitchId(3), lat, 5);
    t.add_link(SwitchId(3), SwitchId(4), lat, 5);
    t.add_link(SwitchId(3), SwitchId(5), lat, 5);
    t.add_link(SwitchId(4), SwitchId(5), lat, 5);
    t.add_host(HostId(1), SwitchId(1));
    t.add_host(HostId(2), SwitchId(2));
    t.add_host(HostId(5), SwitchId(5));
    t
}

fn run_one(unordered: bool) -> (Vec<cicero_core::audit::Hazard>, usize) {
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Modeled;
    let topo = paper_topology();
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);
    if unordered {
        // Swap in the hazard-prone baseline scheduler on every controller.
        for c in 1..=4u32 {
            engine.with_controller(DomainId(0), ControllerId(c), |ctrl| {
                ctrl.set_scheduler(Box::new(UnorderedScheduler));
            });
        }
    }
    let (src, dst) = (HostId(1), HostId(5));
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    let r = route(&topo, src, dst).expect("connected");
    engine.inject_raw(
        start,
        ENVIRONMENT,
        engine.switch_node(r.path[0]),
        Net::FlowArrival {
            flow: FlowId(1),
            src,
            dst,
            bytes: 1000,
            transit: r.latency,
            start,
        },
    );
    engine.run(start + SimDuration::from_secs(10));
    let hazards = audit_flow(
        engine.observations(),
        r.path[0],
        FlowMatch { src, dst },
        false,
    );
    let applied = engine
        .observations()
        .iter()
        .filter(|o| matches!(o.value, Obs::UpdateApplied { .. }))
        .count();
    (hazards, applied)
}

fn main() {
    println!("== Black-hole freedom (paper Fig. 2 / Table 1) ==");
    let (hazards, applied) = run_one(true);
    println!("unordered scheduler : {applied} updates applied, hazards found:");
    for h in &hazards {
        println!("  step {}: {:?}", h.step, h.outcome);
    }
    assert!(
        hazards
            .iter()
            .any(|h| matches!(h.outcome, WalkOutcome::BlackHole(_))),
        "the unordered baseline must exhibit a transient black hole"
    );

    let (hazards, applied) = run_one(false);
    println!("Cicero reverse-path : {applied} updates applied, hazards found: {}", hazards.len());
    assert!(
        hazards.is_empty(),
        "Cicero's ordered updates must never expose a hazardous state"
    );

    println!();
    println!("== Firewall enforcement (paper Fig. 1 / Table 1) ==");
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Modeled;
    let topo = paper_topology();
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);
    let denied_pair = FlowMatch {
        src: HostId(2),
        dst: HostId(5),
    };
    for c in 1..=4u32 {
        engine.with_controller(DomainId(0), ControllerId(c), |ctrl| {
            ctrl.app_mut().firewall.deny(denied_pair);
        });
    }
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    let r = route(&topo, denied_pair.src, denied_pair.dst).unwrap();
    engine.inject_raw(
        start,
        ENVIRONMENT,
        engine.switch_node(r.path[0]),
        Net::FlowArrival {
            flow: FlowId(2),
            src: denied_pair.src,
            dst: denied_pair.dst,
            bytes: 1000,
            transit: r.latency,
            start,
        },
    );
    engine.run(start + SimDuration::from_secs(10));
    let denied = engine
        .observations()
        .iter()
        .any(|o| matches!(o.value, Obs::FlowDenied { .. }));
    let completed = engine
        .observations()
        .iter()
        .any(|o| matches!(o.value, Obs::FlowCompleted { .. }));
    println!("denied flow stopped at ingress: {denied}; leaked: {completed}");
    assert!(denied && !completed, "firewall must hold");
    let fw_hazards = audit_flow(engine.observations(), r.path[0], denied_pair, true);
    assert!(fw_hazards.is_empty(), "no transient firewall bypass");

    println!();
    println!("== Congestion freedom (paper Fig. 3 / Table 1) ==");
    // Migrating a 5-unit flow between two paths that share the capacity-5
    // s4-s5 link must not transiently double-book it (Fig. 3c's 10/5).
    let topo = paper_topology();
    let mut load = LinkLoad::new();
    let path_a = [SwitchId(1), SwitchId(3), SwitchId(4), SwitchId(5)];
    let path_b = [SwitchId(2), SwitchId(3), SwitchId(4), SwitchId(5)];
    load.reserve_path(&path_a, 5);
    assert!(
        load.would_overload(&topo, &path_b, 5),
        "the shared s4-s5 link cannot hold both"
    );
    load.reserve_path(&path_b, 5);
    // A naive migration reserving the new path before releasing the old one
    // overloads s3's links:
    let naive_overload = !load.overloaded_links(&topo).is_empty();
    println!("naive make-before-break overloads: {naive_overload}");
    assert!(naive_overload);
    // The congestion-free order releases first.
    let mut load = LinkLoad::new();
    load.reserve_path(&path_a, 5);
    load.release_path(&path_a, 5);
    load.reserve_path(&path_b, 5);
    assert!(load.overloaded_links(&topo).is_empty());
    println!("release-before-reserve keeps every link within capacity ✓");

    println!();
    println!("All Table 1 consistency properties verified.");
}
