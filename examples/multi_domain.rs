//! Update domains and inter-domain parallelism (paper §3.3, Fig. 5).
//!
//! Two server pods, each its own update domain with an independent
//! 4-controller control plane (plus a spine interconnect domain). A flow
//! crossing pods raises an event in its origin domain; the static global
//! domain policy identifies the affected domains and the event is forwarded
//! once to each — both control planes then update *their own* switches in
//! parallel. Local flows never leave their domain.
//!
//! Run with: `cargo run --example multi_domain`

use cicero::prelude::*;
use simnet::sim::ENVIRONMENT;
use std::collections::BTreeSet;

fn inject(engine: &mut Engine, topo: &Topology, src: HostId, dst: HostId, id: u64) {
    let r = route(topo, src, dst).expect("connected");
    let start = engine.now() + SimDuration::from_millis(1);
    engine.inject_raw(
        start,
        ENVIRONMENT,
        engine.switch_node(r.path[0]),
        Net::FlowArrival {
            flow: FlowId(id),
            src,
            dst,
            bytes: 2_000,
            transit: r.latency,
            start,
        },
    );
}

fn domains_that_processed(engine: &Engine) -> BTreeSet<DomainId> {
    engine
        .observations()
        .iter()
        .filter_map(|o| match o.value {
            Obs::EventProcessed { domain, .. } => Some(domain),
            _ => None,
        })
        .collect()
}

fn main() {
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Modeled;
    let topo = Topology::multi_pod(2, 4, 2, 2, 2);
    let dm = DomainMap::by_pod(&topo);
    println!(
        "two pods + interconnect = {} domains, 4 controllers each",
        dm.domain_count()
    );
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);

    // 1. A rack-local flow: only its own domain processes the event.
    let hosts = topo.hosts();
    let local_src = hosts[0].id;
    let local_dst = hosts
        .iter()
        .find(|h| h.id != local_src && h.attached == hosts[0].attached)
        .expect("multi-host rack")
        .id;
    inject(&mut engine, &topo, local_src, local_dst, 1);
    engine.run(engine.now() + SimDuration::from_secs(10));
    let after_local = domains_that_processed(&engine);
    println!("local flow processed by domains {after_local:?}");
    assert_eq!(after_local.len(), 1, "local events stay local");

    // 2. A cross-pod flow: the origin domain forwards the event; all
    //    affected domains update their own switches in parallel.
    let remote_dst = hosts
        .iter()
        .find(|h| h.loc.pod != hosts[0].loc.pod)
        .expect("two pods")
        .id;
    inject(&mut engine, &topo, local_src, remote_dst, 2);
    engine.run(engine.now() + SimDuration::from_secs(10));
    let after_remote = domains_that_processed(&engine);
    println!("cross-pod flow processed by domains {after_remote:?}");
    assert!(
        after_remote.len() >= 3,
        "origin pod, destination pod and the interconnect all participate"
    );

    // Both flows completed.
    let completed: Vec<FlowId> = engine
        .observations()
        .iter()
        .filter_map(|o| match o.value {
            Obs::FlowCompleted { flow, .. } => Some(flow),
            _ => None,
        })
        .collect();
    println!("completed flows: {completed:?}");
    assert_eq!(completed, vec![FlowId(1), FlowId(2)]);

    // Per-domain switches were updated by their own control planes only:
    // every applied update's switch belongs to the observing node's domain
    // by construction (domain isolation, paper §3.3) — the engine routes
    // updates exclusively to same-domain switches.
    println!("domain isolation held: each control plane updated only its own switches ✓");
}
