//! Security against a Byzantine controller (paper §3.2).
//!
//! A compromised controller tries three attacks against a switch:
//!
//! 1. **Solo forgery** — it sends an update only it endorses. The switch
//!    never reaches a quorum of identical updates, so nothing is applied.
//! 2. **Fabricated quorum** — it invents partial signatures under other
//!    controllers' indices. Aggregation produces a signature that fails
//!    against the group public key; the individual partials are then
//!    verified, the culprits blacklisted, and the update rejected.
//! 3. **Replay under a stale phase** — a message tagged with an old
//!    membership phase is discarded outright.
//!
//! Run with: `cargo run --example byzantine_controller`

use blscrypto::bls::PartialSignature;
use blscrypto::curves::g1_generator;
use cicero::prelude::*;
use southbound::envelope::{MsgId, ShareSigned};

fn rogue_update(victim: SwitchId, seq: u32) -> NetworkUpdate {
    NetworkUpdate {
        id: UpdateId {
            event: EventId(0xbad),
            seq,
        },
        switch: victim,
        kind: UpdateKind::Install(FlowRule {
            matcher: FlowMatch {
                src: HostId(0),
                dst: HostId(1),
            },
            // The attack: silently blackhole the pair.
            action: FlowAction::Deny,
        }),
    }
}

fn main() {
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Real;
    let topo = Topology::single_pod(2, 2, 2);
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);
    let victim = topo.switches()[2].id;
    let rogue_node = engine.controller_node(DomainId(0), ControllerId(2));

    println!("attack 1: solo rogue update (one honest-looking share)");
    let u1 = rogue_update(victim, 0);
    engine.inject_raw(
        SimTime::ZERO + SimDuration::from_millis(1),
        rogue_node,
        engine.switch_node(victim),
        Net::UpdateMsg(ShareSigned {
            payload: u1,
            phase: Phase(0),
            msg_id: MsgId { origin: 2, seq: 1 },
            partial: PartialSignature {
                index: 2,
                sig: g1_generator().to_affine(),
            },
        }),
    );
    engine.run(engine.now() + SimDuration::from_secs(2));
    assert_eq!(applied(&engine), 0, "no quorum, no application");
    println!("  -> buffered forever, never applied ✓");

    println!("attack 2: fabricated quorum (forged partials under indices 1,3,4)");
    let u2 = rogue_update(victim, 1);
    for idx in [1u32, 3, 4] {
        engine.inject_raw(
            engine.now() + SimDuration::from_millis(1),
            rogue_node,
            engine.switch_node(victim),
            Net::UpdateMsg(ShareSigned {
                payload: u2,
                phase: Phase(0),
                msg_id: MsgId {
                    origin: 2,
                    seq: 10 + idx as u64,
                },
                partial: PartialSignature {
                    index: idx,
                    sig: g1_generator().mul_fr(blscrypto::fields::Fr::from_u64(idx as u64)).to_affine(),
                },
            }),
        );
    }
    engine.run(engine.now() + SimDuration::from_secs(2));
    assert_eq!(applied(&engine), 0);
    let rejected = engine
        .observations()
        .iter()
        .filter(|o| matches!(o.value, Obs::UpdateRejected { .. }))
        .count();
    assert!(rejected >= 1, "aggregate failed group-key verification");
    println!("  -> aggregate signature failed verification, update rejected ✓");

    println!("attack 3: stale-phase replay");
    let u3 = rogue_update(victim, 2);
    engine.inject_raw(
        engine.now() + SimDuration::from_millis(1),
        rogue_node,
        engine.switch_node(victim),
        Net::UpdateMsg(ShareSigned {
            payload: u3,
            phase: Phase(999), // wrong phase
            msg_id: MsgId { origin: 2, seq: 99 },
            partial: PartialSignature {
                index: 1,
                sig: g1_generator().to_affine(),
            },
        }),
    );
    engine.run(engine.now() + SimDuration::from_secs(2));
    assert_eq!(applied(&engine), 0);
    println!("  -> discarded (phase mismatch) ✓");

    // The victim's table is untouched.
    let table_len = engine.with_switch(victim, |s| s.table().len());
    assert_eq!(table_len, 0);
    println!("victim flow table is empty — all three attacks defeated.");
}

fn applied(engine: &Engine) -> usize {
    engine
        .observations()
        .iter()
        .filter(|o| matches!(o.value, Obs::UpdateApplied { .. }))
        .count()
}
