//! Tier-1 enforcement of the detlint rule set: `cargo test` fails if any
//! workspace source violates a determinism or protocol-safety rule, exactly
//! like the standalone `detlint` binary in `scripts/verify.sh`.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = detlint::lint_workspace(root);
    assert!(
        findings.is_empty(),
        "detlint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn a_planted_violation_would_be_caught() {
    // Guards against the lint going vacuously green (bad scoping, broken
    // lexer): the exact bug class the rule exists for must still trip it.
    let planted = "use std::collections::HashMap;\n\
                   pub struct Tbl { m: HashMap<u32, u32> }\n";
    let findings = detlint::lint_source("crates/netmodel/src/planted.rs", planted);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "no-random-order-collections"),
        "planted HashMap in a deterministic crate was not flagged: {findings:?}"
    );
}
