//! Tier-1 enforcement of the detlint rule set: `cargo test` fails if any
//! workspace source violates a determinism or protocol-safety rule, exactly
//! like the standalone `detlint` binary in `scripts/verify.sh`.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = detlint::lint_workspace(root);
    assert!(
        findings.is_empty(),
        "detlint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn a_planted_violation_would_be_caught() {
    // Guards against the lint going vacuously green (bad scoping, broken
    // lexer): the exact bug class the rule exists for must still trip it.
    let planted = "use std::collections::HashMap;\n\
                   pub struct Tbl { m: HashMap<u32, u32> }\n";
    let findings = detlint::lint_source("crates/netmodel/src/planted.rs", planted);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "no-random-order-collections"),
        "planted HashMap in a deterministic crate was not flagged: {findings:?}"
    );
}

#[test]
fn wall_clock_allowance_is_scoped_to_the_clock_boundary() {
    // The threaded runtime's wall-clock allowance covers exactly one
    // module. An `Instant` planted anywhere else in cicero-node — the
    // executor included — must still fail the lint...
    let planted = "use std::time::Instant;\n\
                   pub fn sneak() -> Instant { Instant::now() }\n";
    let findings = detlint::lint_source("crates/cicero-node/src/exec.rs", planted);
    assert!(
        findings.iter().any(|f| f.rule == "no-wall-clock"),
        "planted Instant outside the clock boundary was not flagged: {findings:?}"
    );

    // ...while the boundary module itself is allowed to read the clock.
    let findings = detlint::lint_source("crates/cicero-node/src/clock.rs", planted);
    assert!(
        findings.is_empty(),
        "the clock boundary module must be wall-clock-allowed: {findings:?}"
    );
}

#[test]
fn controller_module_split_stays_on_the_hot_path() {
    // The ctrl/ directory inherited ctrl.rs's panic-policy scope when the
    // controller was split into modules; a bare unwrap in any of them must
    // still be flagged.
    let planted = "pub fn hot(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = detlint::lint_source("crates/cicero-core/src/ctrl/barriers.rs", planted);
    assert!(
        findings.iter().any(|f| f.rule == "panic-policy"),
        "planted unwrap in a ctrl/ module was not flagged: {findings:?}"
    );
}
