//! Tier-1 enforcement of the detlint rule set: `cargo test` fails if any
//! workspace source violates a determinism or protocol-safety rule, exactly
//! like the standalone `detlint` binary in `scripts/verify.sh`.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = detlint::lint_workspace(root);
    assert!(
        findings.is_empty(),
        "detlint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn a_planted_violation_would_be_caught() {
    // Guards against the lint going vacuously green (bad scoping, broken
    // lexer): the exact bug class the rule exists for must still trip it.
    let planted = "use std::collections::HashMap;\n\
                   pub struct Tbl { m: HashMap<u32, u32> }\n";
    let findings = detlint::lint_source("crates/netmodel/src/planted.rs", planted);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "no-random-order-collections"),
        "planted HashMap in a deterministic crate was not flagged: {findings:?}"
    );
}

#[test]
fn wall_clock_allowance_is_scoped_to_the_clock_boundary() {
    // The threaded runtime's wall-clock allowance covers exactly one
    // module. An `Instant` planted anywhere else in cicero-node — the
    // executor included — must still fail the lint...
    let planted = "use std::time::Instant;\n\
                   pub fn sneak() -> Instant { Instant::now() }\n";
    let findings = detlint::lint_source("crates/cicero-node/src/exec.rs", planted);
    assert!(
        findings.iter().any(|f| f.rule == "no-wall-clock"),
        "planted Instant outside the clock boundary was not flagged: {findings:?}"
    );

    // ...while the boundary module itself is allowed to read the clock.
    let findings = detlint::lint_source("crates/cicero-node/src/clock.rs", planted);
    assert!(
        findings.is_empty(),
        "the clock boundary module must be wall-clock-allowed: {findings:?}"
    );
}

/// Runs the cross-file pass over a planted mini-workspace.
fn lint_set(files: &[(&str, &str)]) -> Vec<detlint::Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    detlint::lint_files(&owned)
}

#[test]
fn an_unhandled_net_variant_would_be_caught() {
    // A message that can be constructed but that no handler matches is dead
    // on arrival; the coverage rule must anchor the finding at the variant
    // declaration (where an allow belongs), not the construction site.
    let findings = lint_set(&[
        (
            "crates/cicero-core/src/msg.rs",
            "pub enum Net {\n    Ping(u32),\n    Pong(u32),\n}\n",
        ),
        (
            "crates/cicero-core/src/ctrl/delivery.rs",
            "pub fn emit(ctx: &mut Ctx) {\n\
             \x20   ctx.send(1, Net::Ping(1));\n\
             \x20   ctx.send(2, Net::Pong(2));\n\
             }\n\
             pub fn on_msg(m: Net) {\n\
             \x20   match m {\n\
             \x20       Net::Ping(x) => act(x),\n\
             \x20       _ => {}\n\
             \x20   }\n\
             }\n",
        ),
    ]);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "net-variant-unhandled")
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "exactly the unhandled variant must be flagged: {findings:?}"
    );
    assert!(
        hits[0].file.ends_with("msg.rs") && hits[0].message.contains("Pong"),
        "finding must anchor at Pong's declaration: {:?}",
        hits[0]
    );
}

#[test]
fn an_unaudited_obs_variant_would_be_caught() {
    // An observation the oracles never look at is a figure nobody checks;
    // consumption counts through functions transitively called from the
    // oracle registry, so `audit` below covers `Seen` but not `Missed`.
    let findings = lint_set(&[
        (
            "crates/cicero-core/src/obs.rs",
            "pub enum Obs {\n    Seen { n: u32 },\n    Missed { n: u32 },\n}\n",
        ),
        (
            "crates/cicero-core/src/switch.rs",
            "pub fn tick(ctx: &mut Ctx) {\n\
             \x20   ctx.observe(Obs::Seen { n: 1 });\n\
             \x20   ctx.observe(Obs::Missed { n: 2 });\n\
             }\n",
        ),
        (
            "crates/simcheck/src/oracle.rs",
            "pub fn check_all(o: &Obs, out: &mut Vec<u32>) {\n\
             \x20   audit(o, out);\n\
             }\n\
             fn audit(o: &Obs, out: &mut Vec<u32>) {\n\
             \x20   if let Obs::Seen { n } = o {\n\
             \x20       out.push(*n);\n\
             \x20   }\n\
             }\n",
        ),
    ]);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "obs-variant-unaudited")
        .collect();
    assert_eq!(hits.len(), 1, "only Missed is unaudited: {findings:?}");
    assert!(
        hits[0].file.ends_with("obs.rs") && hits[0].message.contains("Missed"),
        "finding must anchor at Missed's declaration: {:?}",
        hits[0]
    );
}

#[test]
fn an_unreplayed_wal_variant_would_be_caught() {
    // A logged fact with no replay arm is silently lost on restart.
    let findings = lint_set(&[
        (
            "crates/cicero-core/src/wal.rs",
            "pub enum WalRecord {\n    Applied { u: u32 },\n    Signer { s: u32 },\n}\n",
        ),
        (
            "crates/cicero-core/src/ctrl/durable.rs",
            "pub fn persist(ctx: &mut Ctx) {\n\
             \x20   ctx.log_record(&WalRecord::Applied { u: 1 });\n\
             \x20   ctx.log_record(&WalRecord::Signer { s: 2 });\n\
             }\n\
             pub fn replay(r: WalRecord) {\n\
             \x20   match r {\n\
             \x20       WalRecord::Applied { u } => apply(u),\n\
             \x20       _ => {}\n\
             \x20   }\n\
             }\n",
        ),
    ]);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "wal-variant-unreplayed")
        .collect();
    assert_eq!(hits.len(), 1, "only Signer lacks a replay arm: {findings:?}");
    assert!(
        hits[0].message.contains("Signer"),
        "finding must name the unreplayed variant: {:?}",
        hits[0]
    );
}

#[test]
fn an_ack_sent_before_its_wal_append_would_be_caught() {
    // The receipt stops the peer retransmitting; crashing after the send
    // but before the append forgets the fact with no recovery path left.
    // One-level inlining: `note` counts as an appender because it calls
    // `log_record`.
    let bad = "pub fn on_report(ctx: &mut Ctx, node: u32, m: Msg) {\n\
               \x20   ctx.send(node, Net::AckMsg(m.id));\n\
               \x20   note(ctx, m);\n\
               }\n\
               fn note(ctx: &mut Ctx, m: Msg) {\n\
               \x20   ctx.log_record(&m);\n\
               }\n";
    let findings = lint_set(&[("crates/cicero-core/src/ctrl/barriers.rs", bad)]);
    assert!(
        findings.iter().any(|f| f.rule == "write-ahead-ordering"),
        "ack before append was not flagged: {findings:?}"
    );

    // Append-then-send is the lawful order and must pass.
    let good = "pub fn on_report(ctx: &mut Ctx, node: u32, m: Msg) {\n\
                \x20   note(ctx, m);\n\
                \x20   ctx.send(node, Net::AckMsg(m.id));\n\
                }\n\
                fn note(ctx: &mut Ctx, m: Msg) {\n\
                \x20   ctx.log_record(&m);\n\
                }\n";
    let findings = lint_set(&[("crates/cicero-core/src/ctrl/barriers.rs", good)]);
    assert!(
        !findings.iter().any(|f| f.rule == "write-ahead-ordering"),
        "append-before-ack is the lawful order: {findings:?}"
    );
}

#[test]
fn a_blocking_call_in_an_actor_handler_would_be_caught() {
    // A handler that blocks on its own mailbox deadlocks the actor.
    let findings = lint_set(&[(
        "crates/cicero-node/src/node.rs",
        "pub fn on_mail(&mut self) {\n\
         \x20   let m = self.rx.recv();\n\
         \x20   self.apply(m);\n\
         }\n",
    )]);
    assert!(
        findings.iter().any(|f| f.rule == "actor-blocking"),
        "blocking recv in a handler was not flagged: {findings:?}"
    );

    // A channel send while a lock guard is live can park holding the lock.
    let findings = lint_set(&[(
        "crates/cicero-node/src/node.rs",
        "pub fn pump(&self) {\n\
         \x20   let g = self.state.lock();\n\
         \x20   self.tx.try_send(g.n);\n\
         }\n",
    )]);
    assert!(
        findings.iter().any(|f| f.rule == "actor-blocking"),
        "try_send under a live lock guard was not flagged: {findings:?}"
    );

    // Scoping the guard into its own block releases it first: clean.
    let findings = lint_set(&[(
        "crates/cicero-node/src/node.rs",
        "pub fn pump(&self) {\n\
         \x20   let n = { let g = self.state.lock(); g.n };\n\
         \x20   self.tx.try_send(n);\n\
         }\n",
    )]);
    assert!(
        !findings.iter().any(|f| f.rule == "actor-blocking"),
        "a block-scoped guard released before the send is lawful: {findings:?}"
    );
}

#[test]
fn a_lock_order_cycle_would_be_caught() {
    let findings = lint_set(&[(
        "crates/cicero-node/src/locks.rs",
        "pub fn fwd(&self) {\n\
         \x20   let a = self.alpha.lock();\n\
         \x20   let b = self.beta.lock();\n\
         \x20   consume(a, b);\n\
         }\n\
         pub fn rev(&self) {\n\
         \x20   let b = self.beta.lock();\n\
         \x20   let a = self.alpha.lock();\n\
         \x20   consume(a, b);\n\
         }\n",
    )]);
    assert!(
        findings.iter().any(|f| f.rule == "lock-order-cycle"),
        "opposite acquisition orders were not flagged: {findings:?}"
    );

    // A consistent global order is cycle-free and must pass.
    let findings = lint_set(&[(
        "crates/cicero-node/src/locks.rs",
        "pub fn fwd(&self) {\n\
         \x20   let a = self.alpha.lock();\n\
         \x20   let b = self.beta.lock();\n\
         \x20   consume(a, b);\n\
         }\n\
         pub fn fwd2(&self) {\n\
         \x20   let a = self.alpha.lock();\n\
         \x20   let b = self.beta.lock();\n\
         \x20   consume(b, a);\n\
         }\n",
    )]);
    assert!(
        !findings.iter().any(|f| f.rule == "lock-order-cycle"),
        "a consistent acquisition order is lawful: {findings:?}"
    );
}

#[test]
fn flow_rule_findings_honor_the_allow_escape_hatch() {
    // An allow at the variant declaration (where coverage findings anchor)
    // must suppress the finding — and must not read as stale.
    let findings = lint_set(&[
        (
            "crates/cicero-core/src/msg.rs",
            "pub enum Net {\n\
             \x20   Ping(u32),\n\
             \x20   // detlint::allow(net-variant-unhandled): planted for the meta-test\n\
             \x20   Pong(u32),\n\
             }\n",
        ),
        (
            "crates/cicero-core/src/ctrl/delivery.rs",
            "pub fn emit(ctx: &mut Ctx) {\n\
             \x20   ctx.send(1, Net::Ping(1));\n\
             \x20   ctx.send(2, Net::Pong(2));\n\
             }\n\
             pub fn on_msg(m: Net) {\n\
             \x20   match m {\n\
             \x20       Net::Ping(x) => act(x),\n\
             \x20       _ => {}\n\
             \x20   }\n\
             }\n",
        ),
    ]);
    assert!(
        findings.is_empty(),
        "an allow at the anchor declaration must suppress the flow finding \
         without going stale: {findings:?}"
    );
}

#[test]
fn controller_module_split_stays_on_the_hot_path() {
    // The ctrl/ directory inherited ctrl.rs's panic-policy scope when the
    // controller was split into modules; a bare unwrap in any of them must
    // still be flagged.
    let planted = "pub fn hot(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = detlint::lint_source("crates/cicero-core/src/ctrl/barriers.rs", planted);
    assert!(
        findings.iter().any(|f| f.rule == "panic-policy"),
        "planted unwrap in a ctrl/ module was not flagged: {findings:?}"
    );
}
