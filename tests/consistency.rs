//! Table 1 consistency properties as integration tests: the hazards exist
//! under unordered updates and are absent under Cicero's schedulers.
//!
//! Engine setup lives in `simcheck::harness`; these tests only express the
//! scenario and the property.

use cicero::prelude::*;
use cicero_core::audit::{audit_flow, WalkOutcome};
use simcheck::harness;

enum Sched {
    Unordered,
    ReversePath,
    DependencyGraph,
}

fn run_with_scheduler(sched: Sched) -> Vec<cicero_core::audit::Hazard> {
    let topo = harness::paper_topology();
    let mut engine = harness::build_engine(
        Mode::Cicero {
            aggregation: Aggregation::Switch,
        },
        CryptoMode::Modeled,
        &topo,
    );
    harness::set_schedulers(&mut engine, || match sched {
        Sched::Unordered => Box::new(UnorderedScheduler),
        Sched::ReversePath => Box::new(ReversePathScheduler),
        Sched::DependencyGraph => {
            Box::new(controller::scheduler::DependencyGraphScheduler::new())
        }
    });
    let (src, dst) = (HostId(1), HostId(5));
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    let r = harness::inject_flow(&mut engine, &topo, FlowId(1), src, dst, 500, start)
        .expect("connected");
    engine.run(start + SimDuration::from_secs(10));
    // The flow must complete under every scheduler (liveness)...
    assert!(harness::completed_count(&engine) > 0);
    // ...the difference is the safety of intermediate states.
    audit_flow(engine.observations(), r.path[0], FlowMatch { src, dst }, false)
}

#[test]
fn unordered_updates_expose_transient_black_hole() {
    let hazards = run_with_scheduler(Sched::Unordered);
    assert!(
        hazards
            .iter()
            .any(|h| matches!(h.outcome, WalkOutcome::BlackHole(_))),
        "expected a transient black hole, got {hazards:?}"
    );
}

#[test]
fn reverse_path_scheduler_is_hazard_free() {
    assert!(run_with_scheduler(Sched::ReversePath).is_empty());
}

#[test]
fn dependency_graph_scheduler_is_hazard_free() {
    assert!(run_with_scheduler(Sched::DependencyGraph).is_empty());
}

#[test]
fn firewall_policy_is_never_transiently_bypassed() {
    let topo = harness::paper_topology();
    let mut engine = harness::build_engine(
        Mode::Cicero {
            aggregation: Aggregation::Switch,
        },
        CryptoMode::Modeled,
        &topo,
    );
    let denied_pair = FlowMatch {
        src: HostId(2),
        dst: HostId(5),
    };
    harness::deny_pair(&mut engine, denied_pair);
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    let r = harness::inject_flow(
        &mut engine,
        &topo,
        FlowId(9),
        denied_pair.src,
        denied_pair.dst,
        500,
        start,
    )
    .unwrap();
    engine.run(start + SimDuration::from_secs(10));
    assert!(harness::denied_count(&engine) > 0);
    assert_eq!(harness::completed_count(&engine), 0);
    assert!(audit_flow(engine.observations(), r.path[0], denied_pair, true).is_empty());
}

#[test]
fn all_modes_complete_flows_identically() {
    // Consistency must hold in every mode; only timing differs.
    for mode in ALL_MODES {
        let topo = harness::paper_topology();
        let mut engine = harness::build_engine(mode, CryptoMode::Modeled, &topo);
        let (src, dst) = (HostId(1), HostId(5));
        let start = SimTime::ZERO + SimDuration::from_millis(1);
        let r = harness::inject_flow(&mut engine, &topo, FlowId(1), src, dst, 500, start)
            .unwrap();
        engine.run(start + SimDuration::from_secs(10));
        assert!(
            harness::completed_count(&engine) > 0,
            "{} failed to complete the flow",
            mode.label()
        );
        assert!(
            audit_flow(engine.observations(), r.path[0], FlowMatch { src, dst }, false)
                .is_empty(),
            "{} exposed a hazard",
            mode.label()
        );
    }
}

#[test]
fn link_failure_reroutes_without_hazards() {
    // Paper Fig. 2: a flow to s5 runs over the s3-s5 link; the link fails;
    // Cicero repairs the route make-before-break — the replay audit must
    // find no transient loop or black hole, and the final path avoids the
    // dead link.
    let topo = harness::paper_topology();
    let mut engine = harness::build_engine(
        Mode::Cicero {
            aggregation: Aggregation::Switch,
        },
        CryptoMode::Modeled,
        &topo,
    );

    let (src, dst) = (HostId(1), HostId(5));
    let m = FlowMatch { src, dst };
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    let r = harness::inject_flow(&mut engine, &topo, FlowId(1), src, dst, 500, start)
        .unwrap();
    assert_eq!(r.path, vec![SwitchId(1), SwitchId(3), SwitchId(5)]);
    engine.run(start + SimDuration::from_secs(5));
    assert!(harness::completed_count(&engine) > 0);

    // The s3-s5 link dies; s3 reports it.
    let fail_at = engine.now() + SimDuration::from_millis(10);
    engine.fail_link(fail_at, SwitchId(3), SwitchId(5));
    engine.run(fail_at + SimDuration::from_secs(10));

    // Replay the full applied-update history: no transient hazards, and the
    // final state routes around the failure.
    let hazards = audit_flow(engine.observations(), SwitchId(1), m, false);
    assert!(hazards.is_empty(), "repair must be make-before-break: {hazards:?}");

    let mut state = cicero_core::audit::ReplayState::new();
    for o in engine.observations() {
        if let Obs::UpdateApplied { switch, kind, .. } = o.value {
            state.apply(switch, kind);
        }
    }
    assert_eq!(
        state.walk(SwitchId(1), m),
        WalkOutcome::Delivered(dst),
        "flow still routed after repair"
    );
    // The new path uses s4, not the dead s3-s5 link.
    assert_eq!(
        state.rule(SwitchId(3), m),
        Some(FlowAction::Forward(NextHop::Switch(SwitchId(4)))),
        "repaired route detours via s4"
    );
}
