//! Table 1 consistency properties as integration tests: the hazards exist
//! under unordered updates and are absent under Cicero's schedulers.

use cicero::prelude::*;
use cicero_core::audit::{audit_flow, WalkOutcome};
use netmodel::topology::{Location, SwitchRole};
use simnet::sim::ENVIRONMENT;

/// The paper's five-switch example fabric (Figs. 1–3).
fn paper_topology() -> Topology {
    let mut t = Topology::empty();
    let loc = Location {
        dc: 0,
        pod: 0,
        rack: 0,
    };
    for i in 1..=5 {
        t.add_switch(SwitchId(i), SwitchRole::TopOfRack, loc);
    }
    let lat = SimDuration::from_micros(20);
    t.add_link(SwitchId(1), SwitchId(3), lat, 5);
    t.add_link(SwitchId(2), SwitchId(3), lat, 5);
    t.add_link(SwitchId(3), SwitchId(4), lat, 5);
    t.add_link(SwitchId(3), SwitchId(5), lat, 5);
    t.add_link(SwitchId(4), SwitchId(5), lat, 5);
    t.add_host(HostId(1), SwitchId(1));
    t.add_host(HostId(2), SwitchId(2));
    t.add_host(HostId(5), SwitchId(5));
    t
}

enum Sched {
    Unordered,
    ReversePath,
    DependencyGraph,
}

fn run_with_scheduler(sched: Sched) -> Vec<cicero_core::audit::Hazard> {
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Modeled;
    let topo = paper_topology();
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);
    for c in 1..=4u32 {
        engine.with_controller(DomainId(0), ControllerId(c), |ctrl| match sched {
            Sched::Unordered => ctrl.set_scheduler(Box::new(UnorderedScheduler)),
            Sched::ReversePath => ctrl.set_scheduler(Box::new(ReversePathScheduler)),
            Sched::DependencyGraph => ctrl.set_scheduler(Box::new(
                controller::scheduler::DependencyGraphScheduler::new(),
            )),
        });
    }
    let (src, dst) = (HostId(1), HostId(5));
    let r = route(&topo, src, dst).expect("connected");
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    engine.inject_raw(
        start,
        ENVIRONMENT,
        engine.switch_node(r.path[0]),
        Net::FlowArrival {
            flow: FlowId(1),
            src,
            dst,
            bytes: 500,
            transit: r.latency,
            start,
        },
    );
    engine.run(start + SimDuration::from_secs(10));
    // The flow must complete under every scheduler (liveness)...
    assert!(engine
        .observations()
        .iter()
        .any(|o| matches!(o.value, Obs::FlowCompleted { .. })));
    // ...the difference is the safety of intermediate states.
    audit_flow(engine.observations(), r.path[0], FlowMatch { src, dst }, false)
}

#[test]
fn unordered_updates_expose_transient_black_hole() {
    let hazards = run_with_scheduler(Sched::Unordered);
    assert!(
        hazards
            .iter()
            .any(|h| matches!(h.outcome, WalkOutcome::BlackHole(_))),
        "expected a transient black hole, got {hazards:?}"
    );
}

#[test]
fn reverse_path_scheduler_is_hazard_free() {
    assert!(run_with_scheduler(Sched::ReversePath).is_empty());
}

#[test]
fn dependency_graph_scheduler_is_hazard_free() {
    assert!(run_with_scheduler(Sched::DependencyGraph).is_empty());
}

#[test]
fn firewall_policy_is_never_transiently_bypassed() {
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Modeled;
    let topo = paper_topology();
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);
    let denied_pair = FlowMatch {
        src: HostId(2),
        dst: HostId(5),
    };
    for c in 1..=4u32 {
        engine.with_controller(DomainId(0), ControllerId(c), |ctrl| {
            ctrl.app_mut().firewall.deny(denied_pair);
        });
    }
    let r = route(&topo, denied_pair.src, denied_pair.dst).unwrap();
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    engine.inject_raw(
        start,
        ENVIRONMENT,
        engine.switch_node(r.path[0]),
        Net::FlowArrival {
            flow: FlowId(9),
            src: denied_pair.src,
            dst: denied_pair.dst,
            bytes: 500,
            transit: r.latency,
            start,
        },
    );
    engine.run(start + SimDuration::from_secs(10));
    assert!(engine
        .observations()
        .iter()
        .any(|o| matches!(o.value, Obs::FlowDenied { .. })));
    assert!(!engine
        .observations()
        .iter()
        .any(|o| matches!(o.value, Obs::FlowCompleted { .. })));
    assert!(audit_flow(engine.observations(), r.path[0], denied_pair, true).is_empty());
}

#[test]
fn all_modes_complete_flows_identically() {
    // Consistency must hold in every mode; only timing differs.
    for mode in ALL_MODES {
        let mut cfg = EngineConfig::for_mode(mode);
        cfg.crypto = CryptoMode::Modeled;
        let topo = paper_topology();
        let dm = DomainMap::single(&topo);
        let mut engine = Engine::build(cfg, topo.clone(), dm, 0);
        let (src, dst) = (HostId(1), HostId(5));
        let r = route(&topo, src, dst).unwrap();
        let start = SimTime::ZERO + SimDuration::from_millis(1);
        engine.inject_raw(
            start,
            ENVIRONMENT,
            engine.switch_node(r.path[0]),
            Net::FlowArrival {
                flow: FlowId(1),
                src,
                dst,
                bytes: 500,
                transit: r.latency,
                start,
            },
        );
        engine.run(start + SimDuration::from_secs(10));
        assert!(
            engine
                .observations()
                .iter()
                .any(|o| matches!(o.value, Obs::FlowCompleted { .. })),
            "{} failed to complete the flow",
            mode.label()
        );
        assert!(
            audit_flow(engine.observations(), r.path[0], FlowMatch { src, dst }, false)
                .is_empty(),
            "{} exposed a hazard",
            mode.label()
        );
    }
}

#[test]
fn link_failure_reroutes_without_hazards() {
    // Paper Fig. 2: a flow to s5 runs over the s4-s5 link; the link fails;
    // Cicero repairs the route make-before-break — the replay audit must
    // find no transient loop or black hole, and the final path avoids the
    // dead link.
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Modeled;
    let topo = paper_topology();
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);

    // Force the initial route over s4 by failing s3-s5 first? Simpler: the
    // shortest path h1->h5 is s1-s3-s5; fail s3-s5 and require the repair
    // to go via s4.
    let (src, dst) = (HostId(1), HostId(5));
    let m = FlowMatch { src, dst };
    let r = route(&topo, src, dst).unwrap();
    assert_eq!(r.path, vec![SwitchId(1), SwitchId(3), SwitchId(5)]);
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    engine.inject_raw(
        start,
        simnet::sim::ENVIRONMENT,
        engine.switch_node(r.path[0]),
        Net::FlowArrival {
            flow: FlowId(1),
            src,
            dst,
            bytes: 500,
            transit: r.latency,
            start,
        },
    );
    engine.run(start + SimDuration::from_secs(5));
    assert!(engine
        .observations()
        .iter()
        .any(|o| matches!(o.value, Obs::FlowCompleted { .. })));

    // The s3-s5 link dies; s3 reports it.
    let fail_at = engine.now() + SimDuration::from_millis(10);
    engine.fail_link(fail_at, SwitchId(3), SwitchId(5));
    engine.run(fail_at + SimDuration::from_secs(10));

    // Replay the full applied-update history: no transient hazards, and the
    // final state routes around the failure.
    let hazards = audit_flow(engine.observations(), SwitchId(1), m, false);
    assert!(hazards.is_empty(), "repair must be make-before-break: {hazards:?}");

    let mut state = cicero_core::audit::ReplayState::new();
    for o in engine.observations() {
        if let Obs::UpdateApplied { switch, kind, .. } = o.value {
            state.apply(switch, kind);
        }
    }
    assert_eq!(
        state.walk(SwitchId(1), m),
        WalkOutcome::Delivered(dst),
        "flow still routed after repair"
    );
    // The new path uses s4, not the dead s3-s5 link.
    assert_eq!(
        state.rule(SwitchId(3), m),
        Some(FlowAction::Forward(NextHop::Switch(SwitchId(4)))),
        "repaired route detours via s4"
    );
}
