//! Scaled-down versions of every evaluation experiment, asserting the
//! *shape* the paper reports (who wins, how things scale) rather than
//! absolute numbers.

use cicero::prelude::*;
use controller::policy::DomainMap;

#[test]
fn flow_setup_anchors_are_ordered_like_the_paper() {
    // §6.2: centralized < crash-tolerant < Cicero < Cicero Agg, and the
    // values sit near the reported 2.9 / 4.3 / 8.3 / 11.6 ms.
    let ms: Vec<f64> = ALL_MODES
        .iter()
        .map(|&m| flow_setup_latency_ms(m, 42))
        .collect();
    assert!(ms[0] < ms[1] && ms[1] < ms[2] && ms[2] < ms[3], "{ms:?}");
    for (got, want) in ms.iter().zip([2.9, 4.3, 8.3, 11.6]) {
        let rel = (got - want).abs() / want;
        assert!(rel < 0.25, "setup {got:.2} vs paper {want} off by {rel:.0$}", 2);
    }
}

#[test]
fn fig12a_update_time_grows_with_control_plane_size() {
    let rows = fig12a_update_time(&[1, 4, 10], 4, 7);
    let get = |mode: Mode, n: u32| {
        rows.iter()
            .find(|(m, k, _)| *m == mode && *k == n)
            .map(|&(_, _, ms)| ms)
            .unwrap()
    };
    let central = get(Mode::Centralized, 1);
    let cicero4 = get(
        Mode::Cicero {
            aggregation: Aggregation::Switch,
        },
        4,
    );
    let cicero10 = get(
        Mode::Cicero {
            aggregation: Aggregation::Switch,
        },
        10,
    );
    let crash10 = get(Mode::CrashTolerant, 10);
    assert!(central < cicero4, "protection costs something");
    assert!(cicero4 < cicero10, "larger planes are slower");
    assert!(crash10 < cicero10, "authentication costs something");
    // The paper's headline: a large Cicero plane costs a low single-digit
    // multiple of centralized (reported ≈2.5x at n=10).
    let ratio = cicero10 / central;
    assert!((1.5..6.0).contains(&ratio), "ratio {ratio:.1}");
}

#[test]
fn fig12b_locality_shrinks_per_domain_load() {
    let mut hadoop = workload::spec::hadoop();
    hadoop.flows = 600;
    let k1 = fig12b_event_locality(&hadoop, 1, 7);
    let k4 = fig12b_event_locality(&hadoop, 4, 7);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!((avg(&k1) - 100.0).abs() < 1e-6);
    // Four domains: each handles ~25% (plus the small multi-domain tax).
    assert!(avg(&k4) < 40.0, "avg per-domain share {:.1}%", avg(&k4));

    // Web server traffic is less local than Hadoop, so its multi-domain
    // tax is higher (paper: 31.6% vs 5.8% multi-domain events).
    let mut web = workload::spec::web_server();
    web.flows = 600;
    let k4_web = fig12b_event_locality(&web, 4, 7);
    assert!(
        avg(&k4_web) > avg(&k4),
        "web {:.1}% should exceed hadoop {:.1}%",
        avg(&k4_web),
        avg(&k4)
    );
}

#[test]
fn fig11d_controller_aggregation_halves_switch_cpu() {
    let mut spec = workload::spec::hadoop();
    spec.flows = 400;
    let topo = Topology::single_pod(8, 4, 4);
    let total_cpu = |mode| {
        let run = run_flow_completion(mode, &topo, DomainMap::single(&topo), &spec, true, 7);
        run.mean_switch_cpu.iter().sum::<f64>()
    };
    let cicero = total_cpu(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    let agg = total_cpu(Mode::Cicero {
        aggregation: Aggregation::Controller,
    });
    let central = total_cpu(Mode::Centralized);
    assert!(central < agg, "baseline uses the least switch CPU");
    let ratio = cicero / agg;
    assert!(
        (1.5..3.5).contains(&ratio),
        "switch aggregation should roughly double switch CPU (got {ratio:.2}x)"
    );
}

#[test]
fn fig12d_multi_domain_cicero_beats_centralized_across_dcs() {
    // The paper's crossover result: with data centers behind WAN latencies,
    // domain parallelism makes Cicero *faster* than a single centralized
    // controller serving everything remotely. The paper's system installs
    // each domain's path segment independently, so the crossover claim is
    // asserted on the paper-faithful "unordered" series. The default
    // consistency-preserving protocol additionally serializes
    // boundary-crossing installs destination-first (the cross-domain
    // handshake, DESIGN.md §3); that correctness guarantee costs latency on
    // exactly the multi-domain flows the parallelism used to speed up, so
    // for it we assert the ordering tax stays bounded rather than the
    // crossover itself.
    let mut spec = workload::spec::web_server_multi_dc();
    spec.flows = 800;
    let runs = fig12d_runs(&spec, 3, 7);
    let mean = |label: &str| {
        runs.iter()
            .find(|(l, _)| l == label)
            .map(|(_, c)| c.mean())
            .unwrap()
    };
    let central = mean("Centralized");
    let unordered = mean("Cicero MD unordered");
    let cicero_md = mean("Cicero MD");
    assert!(
        unordered < central,
        "paper Fig. 12d: Cicero MD without cross-domain ordering \
         ({unordered:.2} ms) must beat centralized ({central:.2} ms)"
    );
    assert!(
        cicero_md < central * 1.35,
        "consistency-preserving Cicero MD ({cicero_md:.2} ms) must stay \
         within 1.35x of centralized ({central:.2} ms)"
    );
    assert!(
        cicero_md > unordered,
        "the handshake serializes boundary-crossing installs, so the \
         consistent series ({cicero_md:.2} ms) cannot be faster than the \
         unordered one ({unordered:.2} ms)"
    );
}

#[test]
fn segway_beats_cicero_md_at_equal_consistency() {
    // The decentralized-execution claim (ez-Segway, adapted): with the
    // dependency metadata threshold-signed and pushed once, switches
    // order boundary-crossing installs among themselves with signed
    // readies — one switch-to-switch hop per dependency edge instead of
    // a controller round-trip — so at *equal consistency* (both series
    // destination-first ordered) Segway completes flows strictly faster
    // than Cicero MD. Message counts come along so the figure exposes
    // what each mode's ordering costs the control plane.
    let mut spec = workload::spec::web_server_multi_dc();
    spec.flows = 800;
    let runs = segway_vs_cicero_md(&spec, 3, 7);
    let get = |label: &str| runs.iter().find(|r| r.label == label).unwrap();
    let cicero = get("Cicero MD");
    let segway = get("Segway MD");
    assert!(
        segway.cdf.len() > 0 && cicero.cdf.len() > 0,
        "both series must complete flows"
    );
    assert!(
        segway.cdf.mean() < cicero.cdf.mean(),
        "Segway ({:.2} ms) must beat consistency-preserving Cicero MD \
         ({:.2} ms) at equal consistency",
        segway.cdf.mean(),
        cicero.cdf.mean()
    );
    assert!(
        segway.messages > 0 && cicero.messages > 0,
        "message accounting must be live"
    );
}

#[test]
fn fig11a_mode_overhead_is_amortized_with_rule_reuse() {
    // With rule reuse, the CDFs nearly overlap: mean overhead of Cicero vs
    // centralized stays under ~25% (the paper calls it "negligible").
    let mut spec = workload::spec::hadoop();
    spec.flows = 800;
    let runs = fig11_flow_completion(&spec, true, 11);
    let central = runs[0].cdf.mean();
    let cicero = runs[2].cdf.mean();
    assert!(runs[0].label == "Centralized" && runs[2].label == "Cicero");
    let overhead = (cicero - central) / central;
    assert!(
        overhead < 0.25,
        "amortized overhead should be small, got {:.0}%",
        overhead * 100.0
    );
}

#[test]
fn fig11c_unamortized_overhead_matches_paper_band() {
    // Paper: 16% (Cicero) and 29% (Cicero Agg) over centralized for
    // short-lived setup/teardown flows.
    let mut spec = workload::spec::hadoop();
    spec.flows = 500;
    let runs = fig11_flow_completion(&spec, false, 13);
    let central = runs[0].cdf.mean();
    let cicero = (runs[2].cdf.mean() - central) / central;
    let agg = (runs[3].cdf.mean() - central) / central;
    assert!(
        (0.05..0.45).contains(&cicero),
        "Cicero unamortized overhead {:.0}% out of band",
        cicero * 100.0
    );
    assert!(agg > cicero, "controller aggregation costs more latency");
}
