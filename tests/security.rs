//! Security properties (paper §3.2) under **real** cryptography: switches
//! apply updates only with a verifiable quorum; controllers only accept
//! authentic events and acknowledgements.

use blscrypto::bls::{PartialSignature, SecretKey};
use blscrypto::curves::g1_generator;
use cicero::prelude::*;
use simcheck::harness::{self, applied_count as applied};
use substrate::rng::{SeedableRng, StdRng};
use simnet::sim::ENVIRONMENT;
use southbound::envelope::{MsgId, QuorumSigned, ShareSigned, Signed};

fn build() -> (Engine, Topology) {
    let topo = Topology::single_pod(2, 2, 2);
    let engine = harness::build_engine(
        Mode::Cicero {
            aggregation: Aggregation::Switch,
        },
        CryptoMode::Real,
        &topo,
    );
    (engine, topo)
}

fn rogue_update(victim: SwitchId) -> NetworkUpdate {
    NetworkUpdate {
        id: UpdateId {
            event: EventId(0xbad),
            seq: 0,
        },
        switch: victim,
        kind: UpdateKind::Install(FlowRule {
            matcher: FlowMatch {
                src: HostId(0),
                dst: HostId(1),
            },
            action: FlowAction::Deny,
        }),
    }
}

#[test]
fn below_quorum_updates_are_never_applied() {
    let (mut engine, topo) = build();
    let victim = topo.switches()[2].id;
    let rogue = engine.controller_node(DomainId(0), ControllerId(2));
    engine.inject_raw(
        SimTime::ZERO + SimDuration::from_millis(1),
        rogue,
        engine.switch_node(victim),
        Net::UpdateMsg(ShareSigned {
            payload: rogue_update(victim),
            phase: Phase(0),
            msg_id: MsgId { origin: 2, seq: 1 },
            partial: PartialSignature {
                index: 2,
                sig: g1_generator().to_affine(),
            },
        }),
    );
    engine.run(SimTime::ZERO + SimDuration::from_secs(3));
    assert_eq!(applied(&engine), 0);
}

#[test]
fn forged_quorum_fails_group_key_verification() {
    let (mut engine, topo) = build();
    let victim = topo.switches()[2].id;
    let rogue = engine.controller_node(DomainId(0), ControllerId(2));
    let update = rogue_update(victim);
    for idx in [1u32, 2, 3, 4] {
        engine.inject_raw(
            SimTime::ZERO + SimDuration::from_millis(1),
            rogue,
            engine.switch_node(victim),
            Net::UpdateMsg(ShareSigned {
                payload: update,
                phase: Phase(0),
                msg_id: MsgId {
                    origin: 2,
                    seq: idx as u64,
                },
                partial: PartialSignature {
                    index: idx,
                    sig: g1_generator()
                        .mul_fr(blscrypto::fields::Fr::from_u64(idx as u64 + 7))
                        .to_affine(),
                },
            }),
        );
    }
    engine.run(SimTime::ZERO + SimDuration::from_secs(3));
    assert_eq!(applied(&engine), 0);
    assert!(engine
        .observations()
        .iter()
        .any(|o| matches!(o.value, Obs::UpdateRejected { .. })));
}

#[test]
fn forged_aggregated_update_is_rejected_in_controller_agg_mode() {
    let topo = Topology::single_pod(2, 2, 2);
    let mut engine = harness::build_engine(
        Mode::Cicero {
            aggregation: Aggregation::Controller,
        },
        CryptoMode::Real,
        &topo,
    );
    let victim = topo.switches()[2].id;
    // A malicious "aggregator" fabricates an aggregated signature.
    let mut rng = StdRng::seed_from_u64(666);
    let fake_key = SecretKey::generate(&mut rng);
    let update = rogue_update(victim);
    let digest = southbound::envelope::signing_digest(
        "CICERO_UPDATE_V1",
        Phase(0),
        &update,
    );
    let forged = QuorumSigned {
        payload: update,
        phase: Phase(0),
        msg_id: MsgId { origin: 1, seq: 1 },
        signature: fake_key.sign(&digest),
    };
    let rogue = engine.controller_node(DomainId(0), ControllerId(1));
    engine.inject_raw(
        SimTime::ZERO + SimDuration::from_millis(1),
        rogue,
        engine.switch_node(victim),
        Net::UpdateAggregated(forged),
    );
    engine.run(SimTime::ZERO + SimDuration::from_secs(3));
    assert_eq!(applied(&engine), 0);
    assert!(engine
        .observations()
        .iter()
        .any(|o| matches!(o.value, Obs::UpdateRejected { .. })));
}

#[test]
fn unauthenticated_events_are_ignored() {
    let (mut engine, topo) = build();
    // An attacker injects a PacketIn claiming to be from a switch, signed
    // with the wrong key: controllers must not process it.
    let mut rng = StdRng::seed_from_u64(1234);
    let attacker_key = SecretKey::generate(&mut rng);
    let event = Event {
        id: EventId(0xf00),
        kind: EventKind::PacketIn {
            switch: topo.switches()[2].id,
            flow: FlowId(1),
            src: HostId(0),
            dst: HostId(1),
        },
        origin: DomainId(0),
        forwarded: false,
    };
    let forged = Signed::sign(
        "CICERO_EVENT_V1",
        event,
        Phase(0),
        MsgId {
            origin: topo.switches()[2].id.0,
            seq: 1,
        },
        &attacker_key,
    );
    for c in 1..=4u32 {
        let node = engine.controller_node(DomainId(0), ControllerId(c));
        engine.inject_raw(
            SimTime::ZERO + SimDuration::from_millis(1),
            ENVIRONMENT,
            node,
            Net::EventMsg(forged.clone()),
        );
    }
    engine.run(SimTime::ZERO + SimDuration::from_secs(3));
    assert!(
        !engine
            .observations()
            .iter()
            .any(|o| matches!(o.value, Obs::EventProcessed { .. })),
        "forged events must not enter agreement"
    );
    assert_eq!(applied(&engine), 0);
}

#[test]
fn forged_acks_cannot_accelerate_the_reverse_path_pipeline() {
    // The reverse-path schedule releases update k only after the verified
    // ack of update k+1. An attacker pre-forging every ack (wrong key)
    // must not release anything early: completion time with the forged
    // acks present is never earlier than without them.
    fn run(with_forged_acks: bool) -> SimDuration {
        let (mut engine, topo) = build();
        let hosts = topo.hosts();
        let src = hosts[0].id;
        let dst = hosts
            .iter()
            .find(|h| h.attached != hosts[0].attached)
            .unwrap()
            .id;
        let r = route(&topo, src, dst).unwrap();
        assert_eq!(r.path.len(), 3);
        let start = SimTime::ZERO + SimDuration::from_millis(1);
        harness::inject_flow(&mut engine, &topo, FlowId(1), src, dst, 500, start).unwrap();
        if with_forged_acks {
            let mut rng = StdRng::seed_from_u64(99);
            let attacker_key = SecretKey::generate(&mut rng);
            // PacketIn event ids are (switch << 32 | 1); forge acks for all
            // three updates of that event, addressed to all controllers.
            let event = EventId(((r.path[0].0 as u64) << 32) | 1);
            for seq in 0..3u32 {
                let body = cicero_core::msg::AckBody {
                    update: UpdateId { event, seq },
                    switch: r.path[seq as usize],
                };
                let forged = Signed::sign(
                    "CICERO_ACK_V1",
                    body,
                    Phase(0),
                    MsgId {
                        origin: r.path[seq as usize].0,
                        seq: 100 + seq as u64,
                    },
                    &attacker_key,
                );
                for c in 1..=4u32 {
                    let node = engine.controller_node(DomainId(0), ControllerId(c));
                    engine.inject_raw(
                        start + SimDuration::from_micros(100),
                        ENVIRONMENT,
                        node,
                        Net::AckMsg(forged.clone()),
                    );
                }
            }
        }
        engine.run(start + SimDuration::from_secs(10));
        let done = engine
            .observations()
            .iter()
            .find_map(|o| match o.value {
                Obs::FlowCompleted { start, .. } => Some(o.at.since(start)),
                _ => None,
            })
            .expect("flow completes despite the attack");
        done
    }

    let honest = run(false);
    let attacked = run(true);
    assert!(
        attacked >= honest,
        "forged acks must not accelerate completion ({attacked} < {honest})"
    );
}

fn build_segway() -> (Engine, Topology) {
    let topo = Topology::single_pod(2, 2, 2);
    let engine = harness::build_engine(Mode::Segway, CryptoMode::Real, &topo);
    (engine, topo)
}

/// Segway sanity anchor under real crypto: the decentralized mode completes
/// a cross-rack flow, and it demonstrably did so via switch-to-switch
/// releases (a verified `ReadySent` on the wire), not by accident.
#[test]
fn segway_flow_completes_under_real_crypto() {
    let (mut engine, topo) = build_segway();
    let hosts = topo.hosts();
    let src = hosts[0].id;
    let dst = hosts
        .iter()
        .find(|h| h.attached != hosts[0].attached)
        .unwrap()
        .id;
    let start = SimTime::ZERO + SimDuration::from_millis(1);
    harness::inject_flow(&mut engine, &topo, FlowId(1), src, dst, 500, start).unwrap();
    engine.run(start + SimDuration::from_secs(10));
    let obs = engine.observations();
    assert!(
        obs.iter()
            .any(|o| matches!(o.value, Obs::FlowCompleted { .. })),
        "segway flow must complete under real crypto"
    );
    assert!(
        obs.iter().any(|o| matches!(o.value, Obs::ReadySent { .. })),
        "completion must have been ordered by signed readies"
    );
    assert!(
        !obs.iter()
            .any(|o| matches!(o.value, Obs::ReadyRejected { .. })),
        "no ready is rejected in a fault-free run"
    );
}

/// A rogue switch forging a neighbor's ready (wrong key) must not release
/// the gated upstream segment early: every forged ready is rejected with a
/// `ReadyRejected` observation, and completion with the forgery in flight
/// is never earlier than the honest run.
#[test]
fn forged_readies_cannot_release_gated_segments_early() {
    fn run(with_forged_readies: bool) -> SimDuration {
        let (mut engine, topo) = build_segway();
        let hosts = topo.hosts();
        let src = hosts[0].id;
        let dst = hosts
            .iter()
            .find(|h| h.attached != hosts[0].attached)
            .unwrap()
            .id;
        let r = route(&topo, src, dst).unwrap();
        assert_eq!(r.path.len(), 3);
        let start = SimTime::ZERO + SimDuration::from_millis(1);
        harness::inject_flow(&mut engine, &topo, FlowId(1), src, dst, 500, start).unwrap();
        if with_forged_readies {
            let mut rng = StdRng::seed_from_u64(77);
            let attacker_key = SecretKey::generate(&mut rng);
            // PacketIn event ids are (switch << 32 | 1); under the
            // reverse-path schedule, update seq i targets r.path[i] and is
            // gated on (seq i+1, r.path[i+1]). Forge the ready each
            // upstream switch is waiting for, from the designated releaser
            // but under the attacker's key, and spray it across the window
            // in which the real bodies sit parked.
            let event = EventId(((r.path[0].0 as u64) << 32) | 1);
            for seq in 0..2u32 {
                let body = cicero_core::msg::ReadyBody {
                    update: UpdateId {
                        event,
                        seq: seq + 1,
                    },
                    from: r.path[seq as usize + 1],
                    to: r.path[seq as usize],
                };
                let forged = Signed::sign(
                    "CICERO_SEGWAY_READY_V1",
                    body,
                    Phase(0),
                    MsgId {
                        origin: r.path[seq as usize + 1].0,
                        seq: 200 + seq as u64,
                    },
                    &attacker_key,
                );
                for ms in [1u64, 3, 6, 10, 20] {
                    engine.inject_raw(
                        start + SimDuration::from_millis(ms),
                        ENVIRONMENT,
                        engine.switch_node(r.path[seq as usize]),
                        Net::SegwayReady(forged.clone()),
                    );
                }
            }
        }
        engine.run(start + SimDuration::from_secs(10));
        if with_forged_readies {
            assert!(
                engine
                    .observations()
                    .iter()
                    .any(|o| matches!(o.value, Obs::ReadyRejected { .. })),
                "forged readies must surface as ReadyRejected"
            );
        }
        engine
            .observations()
            .iter()
            .find_map(|o| match o.value {
                Obs::FlowCompleted { start, .. } => Some(o.at.since(start)),
                _ => None,
            })
            .expect("flow completes despite the attack")
    }

    let honest = run(false);
    let attacked = run(true);
    assert!(
        attacked >= honest,
        "forged readies must not accelerate completion ({attacked} < {honest})"
    );
}

/// A captured ready replayed at a switch other than its signed `to` target
/// is rejected by the target binding alone — before any gate state is
/// touched. This is what stops a rogue switch from re-using one neighbor's
/// legitimate release to unlock a different victim.
#[test]
fn replayed_ready_at_the_wrong_victim_is_rejected() {
    let (mut engine, topo) = build_segway();
    let intended = topo.switches()[2].id;
    let victim = topo.switches()[3].id;
    assert_ne!(intended, victim);
    let mut rng = StdRng::seed_from_u64(55);
    let attacker_key = SecretKey::generate(&mut rng);
    let body = cicero_core::msg::ReadyBody {
        update: UpdateId {
            event: EventId(0xbad),
            seq: 1,
        },
        from: topo.switches()[0].id,
        to: intended,
    };
    let replayed = Signed::sign(
        "CICERO_SEGWAY_READY_V1",
        body,
        Phase(0),
        MsgId {
            origin: topo.switches()[0].id.0,
            seq: 9,
        },
        &attacker_key,
    );
    engine.inject_raw(
        SimTime::ZERO + SimDuration::from_millis(1),
        ENVIRONMENT,
        engine.switch_node(victim),
        Net::SegwayReady(replayed),
    );
    engine.run(SimTime::ZERO + SimDuration::from_secs(3));
    assert!(
        engine.observations().iter().any(|o| matches!(
            o.value,
            Obs::ReadyRejected { switch, .. } if switch == victim
        )),
        "misdirected ready must be rejected at the wrong victim"
    );
    assert_eq!(applied(&engine), 0);
}
