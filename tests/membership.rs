//! Control-plane membership changes (paper §4.3) with **real** threshold
//! cryptography end to end: additions and removals re-key the control plane
//! without ever changing the group public key switches hold.

use cicero::prelude::*;
use simcheck::harness::{self, completed_count as completed, inject_poisson_flows as inject_some_flows};

fn build(n_standby: u32) -> (Engine, Topology) {
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Real;
    cfg.controllers_per_domain = 5; // allows one removal (minimum is 4)
    let topo = Topology::single_pod(2, 2, 4);
    let engine = harness::build_engine_cfg(cfg, &topo, n_standby);
    (engine, topo)
}

#[test]
fn adding_a_controller_preserves_the_group_key() {
    let (mut engine, topo) = build(1);
    let domain = DomainId(0);
    let pk_before = engine.shared().keys.domains[&domain].public_key;

    inject_some_flows(&mut engine, &topo, 1, 3);
    engine.run(engine.now() + SimDuration::from_secs(30));
    let before = completed(&engine);
    assert_eq!(before, 3);

    let at = engine.now() + SimDuration::from_millis(50);
    engine.inject_membership(at, domain, OrderedOp::AddController(ControllerId(6)));
    engine.run(at + SimDuration::from_secs(5));

    // All six controllers re-keyed; phases advanced in lock step.
    let phases: Vec<u64> = engine
        .observations()
        .iter()
        .filter_map(|o| match o.value {
            Obs::PhaseChanged { phase, .. } => Some(phase),
            _ => None,
        })
        .collect();
    assert!(phases.len() >= 6, "all members + joiner re-key, got {phases:?}");
    assert!(phases.iter().all(|&p| p == 1));

    for c in 1..=6u32 {
        let (pk, view_len, active) = engine.with_controller(domain, ControllerId(c), |ctrl| {
            (
                ctrl.group().public_key(),
                ctrl.view().len(),
                ctrl.is_active(),
            )
        });
        assert!(active, "controller {c} active");
        assert_eq!(view_len, 6);
        assert_eq!(pk, pk_before, "controller {c} sees the same group key");
    }

    // The enlarged control plane still serves flows.
    inject_some_flows(&mut engine, &topo, 2, 3);
    engine.run(engine.now() + SimDuration::from_secs(30));
    assert_eq!(completed(&engine), 6);
}

#[test]
fn removing_a_controller_preserves_the_group_key_and_liveness() {
    let (mut engine, topo) = build(0);
    let domain = DomainId(0);
    let pk_before = engine.shared().keys.domains[&domain].public_key;

    let at = engine.now() + SimDuration::from_millis(50);
    engine.inject_membership(at, domain, OrderedOp::RemoveController(ControllerId(3)));
    engine.run(at + SimDuration::from_secs(5));

    let removed_active =
        engine.with_controller(domain, ControllerId(3), |c| c.is_active());
    assert!(!removed_active, "removed controller must deactivate");
    for c in [1u32, 2, 4, 5] {
        let (pk, view_len) = engine.with_controller(domain, ControllerId(c), |ctrl| {
            (ctrl.group().public_key(), ctrl.view().len())
        });
        assert_eq!(view_len, 4);
        assert_eq!(pk, pk_before);
    }

    // The shrunken control plane still serves flows.
    inject_some_flows(&mut engine, &topo, 3, 3);
    engine.run(engine.now() + SimDuration::from_secs(30));
    assert_eq!(completed(&engine), 3);
}

#[test]
fn events_arriving_during_the_change_are_queued_and_served() {
    let (mut engine, topo) = build(1);
    let domain = DomainId(0);
    let at = engine.now() + SimDuration::from_millis(50);
    engine.inject_membership(at, domain, OrderedOp::AddController(ControllerId(6)));
    // Flows land immediately after the membership op (likely mid-change).
    inject_some_flows(&mut engine, &topo, 4, 3);
    engine.run(engine.now() + SimDuration::from_secs(60));
    assert_eq!(completed(&engine), 3, "queued events must be drained");
}

#[test]
fn non_bootstrap_add_proposals_are_ignored() {
    let (mut engine, _topo) = build(1);
    let domain = DomainId(0);
    // Controller 2 (not the bootstrap) tries to admit someone.
    let node = engine.controller_node(domain, ControllerId(2));
    engine.inject_raw(
        engine.now() + SimDuration::from_millis(1),
        simnet::sim::ENVIRONMENT,
        node,
        Net::MembershipCmd(OrderedOp::AddController(ControllerId(6))),
    );
    engine.run(engine.now() + SimDuration::from_secs(3));
    assert!(
        !engine
            .observations()
            .iter()
            .any(|o| matches!(o.value, Obs::PhaseChanged { .. })),
        "only the bootstrap controller may propose additions"
    );
}

#[test]
fn identifiers_are_never_reused_across_changes() {
    let (mut engine, _topo) = build(2);
    let domain = DomainId(0);
    let t1 = engine.now() + SimDuration::from_millis(50);
    engine.inject_membership(t1, domain, OrderedOp::RemoveController(ControllerId(5)));
    engine.run(t1 + SimDuration::from_secs(5));
    // Admitting "5" again must be rejected; the valid next id is 6.
    let t2 = engine.now() + SimDuration::from_millis(50);
    engine.inject_membership(t2, domain, OrderedOp::AddController(ControllerId(5)));
    engine.run(t2 + SimDuration::from_secs(5));
    let len = engine.with_controller(domain, ControllerId(1), |c| c.view().len());
    assert_eq!(len, 4, "stale identifier must not re-enter");
    let t3 = engine.now() + SimDuration::from_millis(50);
    engine.inject_membership(t3, domain, OrderedOp::AddController(ControllerId(6)));
    engine.run(t3 + SimDuration::from_secs(5));
    let len = engine.with_controller(domain, ControllerId(1), |c| c.view().len());
    assert_eq!(len, 5, "the fresh identifier is admitted");
}

#[test]
fn failure_detector_removes_a_crashed_controller_automatically() {
    // Paper §4.3 + §5.1: heartbeats detect a crashed member; any member
    // proposes its removal through consensus; the reshare re-keys the
    // remaining plane under the same group public key.
    let mut cfg = EngineConfig::for_mode(Mode::Cicero {
        aggregation: Aggregation::Switch,
    });
    cfg.crypto = CryptoMode::Real;
    cfg.controllers_per_domain = 5;
    cfg.heartbeat = Some(SimDuration::from_millis(50));
    let topo = Topology::single_pod(2, 2, 4);
    let dm = DomainMap::single(&topo);
    let mut engine = Engine::build(cfg, topo.clone(), dm, 0);
    let domain = DomainId(0);
    let pk_before = engine.shared().keys.domains[&domain].public_key;

    // Controller 3 dies silently.
    let victim = engine.controller_node(domain, ControllerId(3));
    engine.set_faults(
        simnet::fault::FaultPlan::none()
            .with_crash(SimTime::ZERO + SimDuration::from_millis(10), victim),
    );
    engine.run(SimTime::ZERO + SimDuration::from_secs(5));

    // The survivors detected, agreed, and re-keyed.
    let (len, contains, pk) = engine.with_controller(domain, ControllerId(1), |c| {
        (
            c.view().len(),
            c.view().contains(ControllerId(3)),
            c.group().public_key(),
        )
    });
    assert_eq!(len, 4, "membership shrank automatically");
    assert!(!contains, "the crashed controller was removed");
    assert_eq!(pk, pk_before, "group public key preserved");

    // And the plane still serves flows.
    inject_some_flows(&mut engine, &topo, 9, 2);
    engine.run(engine.now() + SimDuration::from_secs(30));
    assert_eq!(completed(&engine), 2);
}
