#!/usr/bin/env bash
# Reliability soak: run the loss/partition suites and the simulation fuzzer
# at scaled-up case counts. The property harness reads CHECK_CASES to widen
# every seeded sweep (drop rates up to 30%, random transient partitions)
# without code changes; a failure prints the case seed and a CHECK_SEED
# replay command.
#
# Usage:
#   scripts/soak.sh                      # default soak (CHECK_CASES=64)
#   scripts/soak.sh 256                  # heavier sweep
#   CHECK_SEED=0x1234 scripts/soak.sh    # replay one failing case only
#   SOAK_QUICK=1 scripts/soak.sh         # one smoke pass (used by verify.sh)
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/"
[ -f Cargo.toml ] || cd "$(dirname "$0")/.."

cases="${1:-64}"

# CHECK_SEED pins the property harness to exactly one case; export it so
# every child `cargo test` below replays that case instead of sweeping.
if [ -n "${CHECK_SEED:-}" ]; then
    export CHECK_SEED
    echo "== soak: replaying single case CHECK_SEED=$CHECK_SEED =="
fi

# Runs one suite; on failure points at the CHECK_SEED replay line the
# harness printed and re-raises, so CI logs end with the reproduction.
run_suite() {
    label="$1"
    shift
    echo "== soak: $label =="
    if ! "$@"; then
        echo "soak.sh: suite '$label' FAILED" >&2
        echo "  the failing case seed is printed above; replay just it with:" >&2
        echo "  CHECK_SEED=<seed> scripts/soak.sh" >&2
        exit 1
    fi
}

if [ "${SOAK_QUICK:-0}" = "1" ]; then
    run_suite "quick: reliability suite at default case counts" \
        cargo test -q --offline -p cicero-core --test reliability
    exit 0
fi

run_suite "reliability suite, CHECK_CASES=$cases" \
    env CHECK_CASES="$cases" cargo test -q --offline -p cicero-core --test reliability -- --nocapture

run_suite "protocol properties under loss, CHECK_CASES=$cases" \
    env CHECK_CASES="$cases" cargo test -q --offline -p cicero-core --test protocol_props

run_suite "BFT consensus properties, CHECK_CASES=$cases" \
    env CHECK_CASES="$cases" cargo test -q --offline -p bft

run_suite "simulation fuzzer sweep, CHECK_CASES=$cases" \
    env CHECK_CASES="$cases" cargo test -q --offline -p simcheck --test smoke

run_suite "DKG/reshare churn properties, CHECK_CASES=$cases" \
    env CHECK_CASES="$cases" cargo test -q --offline -p blscrypto --test churn

# The recovery sweep quadruples the case count: every scenario schedules a
# crash-recover fault, so this is the soak's main exercise of the WAL
# replay, snapshot-transfer, and recovery-oracle machinery. Failures are
# shrunk and written as replayable artifacts like any simcheck failure.
run_suite "crash-recovery fuzzer sweep, $((cases * 4)) seeds" \
    cargo run -q --offline --release -p bench --bin simcheck -- recover "$((cases * 4))"

echo "soak.sh: all sweeps passed (CHECK_CASES=$cases)"
