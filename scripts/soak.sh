#!/usr/bin/env bash
# Reliability soak: run the loss/partition test suite at scaled-up case
# counts. The property harness reads CHECK_CASES to widen every seeded
# sweep (drop rates up to 30%, random transient partitions) without code
# changes; a failure prints the case seed and a CHECK_SEED replay command.
#
# Usage:
#   scripts/soak.sh           # default soak (CHECK_CASES=64)
#   scripts/soak.sh 256       # heavier sweep
#   SOAK_QUICK=1 scripts/soak.sh   # one smoke pass (used by verify.sh)
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/"
[ -f Cargo.toml ] || cd "$(dirname "$0")/.."

cases="${1:-64}"

if [ "${SOAK_QUICK:-0}" = "1" ]; then
    echo "== soak (quick): reliability suite at default case counts =="
    cargo test -q --offline -p cicero-core --test reliability
    exit 0
fi

echo "== soak: reliability suite, CHECK_CASES=$cases =="
CHECK_CASES="$cases" cargo test -q --offline -p cicero-core --test reliability -- --nocapture

echo "== soak: protocol properties under loss, CHECK_CASES=$cases =="
CHECK_CASES="$cases" cargo test -q --offline -p cicero-core --test protocol_props

echo "== soak: BFT consensus properties, CHECK_CASES=$cases =="
CHECK_CASES="$cases" cargo test -q --offline -p bft

echo "soak.sh: all sweeps passed (CHECK_CASES=$cases)"
