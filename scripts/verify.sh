#!/usr/bin/env bash
# Tier-1 verification: the workspace must build, test, and stay
# dependency-free entirely offline. Run from anywhere inside the repo.
set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/"
[ -f Cargo.toml ] || cd "$(dirname "$0")/.."

echo "== dependency freeze check =="
# The workspace is self-contained: every [dependencies]/[dev-dependencies]
# entry must be a path crate of this workspace. Fail if any manifest
# reintroduces an external crate (rand, serde, bytes, parking_lot,
# crossbeam, proptest, criterion, or anything else from crates.io).
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Dependency section bodies, stripped of comments/blank lines.
    deps=$(awk '
        /^\[(workspace\.)?(dev-|build-)?dependencies\]/ { indep = 1; next }
        /^\[/ { indep = 0 }
        indep && NF && $0 !~ /^#/ { print }
    ' "$manifest")
    while IFS= read -r line; do
        [ -z "$line" ] && continue
        # Allowed forms: `name.workspace = true` or `name = { path = ... }`.
        if echo "$line" | grep -qE '^[a-z0-9_-]+\.workspace *= *true'; then
            continue
        fi
        if echo "$line" | grep -qE '^[a-z0-9_-]+ *= *\{[^}]*path *='; then
            continue
        fi
        echo "  FORBIDDEN external dependency in $manifest: $line"
        fail=1
    done <<< "$deps"
done
if [ "$fail" -ne 0 ]; then
    echo "dependency freeze check FAILED: the workspace must stay self-contained"
    exit 1
fi
echo "  ok: all dependencies are in-workspace path crates"

echo "== tier-1: cargo build --release --offline =="
cargo build --release --offline

# CHECK_SEED pins every property-harness test to one case; export it so
# the child `cargo test` invocations below replay it (see scripts/soak.sh).
if [ -n "${CHECK_SEED:-}" ]; then
    export CHECK_SEED
    echo "== replaying single property case CHECK_SEED=$CHECK_SEED =="
fi

echo "== tier-1: cargo test -q --offline =="
if ! cargo test -q --offline; then
    echo "verify.sh: tier-1 tests FAILED" >&2
    echo "  property failures print a case seed above; replay just it with:" >&2
    echo "  CHECK_SEED=<seed> scripts/verify.sh" >&2
    exit 1
fi

echo "== detlint: determinism & protocol-flow static analysis =="
# Two passes in one binary, workspace-wide, fail on any finding:
#  * per-file token rules — no HashMap/HashSet in deterministic crates, no
#    wall-clock or OS entropy outside the allowlist, no unsafe,
#    explicit-reason expect() in protocol hot paths;
#  * cross-file protocol-flow rules — every constructed Net variant has a
#    handler arm, every emitted Obs variant has an oracle, every appended
#    WalRecord has a replay arm, WAL appends precede acks, and the
#    threaded runtime never blocks in a handler or orders locks cyclically.
# Exceptions need `// detlint::allow(rule): reason` — reason mandatory.
if ! cargo run -q --offline --release -p detlint; then
    echo "verify.sh: detlint FAILED; machine-readable findings via:" >&2
    echo "  cargo run -q --offline --release -p detlint -- --format json" >&2
    exit 1
fi

echo "== crypto perf regression gate (benchkit compare vs BENCH_protocol.json) =="
# Re-measure the crypto suite and diff the medians against the recorded
# baseline: fail on any entry regressing past the tolerance band, on a
# renamed/vanished entry, or on the absolute paper-level caps —
# bls_verify ≤ 10 ms and batch_verify_64 amortized ≤ 2 ms per update.
# The band is wide (3x) because this runs on shared/variable hardware; the
# caps are what the acceptance criteria actually pin. Skip with
# SKIP_BENCH_GATE=1 (e.g. on heavily loaded CI workers), refresh the
# baseline with BENCHKIT_OUT=$PWD/BENCH_protocol.json cargo bench -p bench --bench crypto.
if [ -z "${SKIP_BENCH_GATE:-}" ]; then
    fresh_bench=$(mktemp /tmp/benchkit-fresh.XXXXXX.json)
    BENCHKIT_OUT="$fresh_bench" cargo bench -q --offline -p bench --bench crypto >/dev/null
    cargo run -q --offline --release -p bench --bin benchgate -- \
        BENCH_protocol.json "$fresh_bench" crypto \
        --tolerance 2.0 \
        --cap bls_verify=10000000 \
        --cap batch_verify_64/64=2000000
    rm -f "$fresh_bench"
else
    echo "  skipped (SKIP_BENCH_GATE set)"
fi

echo "== secure-mode fuzzer sweep (256 seeds, threshold-signed modes) =="
# All 256 seeds forced into the Cicero-family modes so every scenario
# exercises threshold signing, quorum checks, and the aggregator's batched
# verification — the paths the crypto fast path rewired.
cargo run -q --offline --release -p bench --bin simcheck -- secure 256

echo "== secure-mode crash-recovery sweep (256 seeds) =="
# generate_recovery already forces Cicero-family modes; 256 seeds of
# crash-and-restart on top of the secure update path.
cargo run -q --offline --release -p bench --bin simcheck -- recover 256

echo "== segway-mode fuzzer sweep (256 seeds, decentralized execution) =="
# All 256 seeds forced into Mode::Segway so every scenario exercises the
# switch-to-switch release path: threshold-signed gate/notify metadata,
# signed readies with receipts and retransmission, ready loss/duplication,
# rogue and replayed readies, and (every fourth seed) a switch crashed and
# restarted from its WAL mid-release.
cargo run -q --offline --release -p bench --bin simcheck -- segway 256

echo "== simulation fuzzer smoke (bounded seed sweep) =="
# A bounded exploration of fresh seeds beyond the fixed forall! sweep the
# test suite already ran; failures are shrunk and written as replayable
# artifacts, and the run prints the exact replay command. The generator
# biases every fourth seed (seed % 4 == 3, i.e. a quarter of this sweep)
# toward multi-domain scenarios with a boundary-crossing flow, so the
# cross-domain ordering handshake is exercised on every invocation.
cargo run -q --offline --release -p bench --bin simcheck -- run 64

echo "== crash-recovery fuzzer smoke (bounded recovery sweep) =="
# Every scenario carries exactly one crash-recover fault (a controller
# killed mid-update and restarted, half the seeds with its disk wiped);
# the recovery oracle demands exactly-once update application and a
# completed state sync per restart on top of the standard invariants.
cargo run -q --offline --release -p bench --bin simcheck -- recover 64

echo "== reliability smoke (scripts/soak.sh quick) =="
SOAK_QUICK=1 "$(dirname "$0")/soak.sh"

echo "== threaded runtime smoke (cicero-node, real threads) =="
# The same protocol actors on OS threads: a 2-domain deployment from the
# example config must converge with a clean consistency audit inside a few
# seconds of wall clock (the config's budget_ms bounds the run).
cargo build -q --release --offline -p cicero-node
cargo run -q --release --offline -p cicero-node -- examples/node_two_domains.json

echo "== crash-recovery smoke (cicero-node, WAL on real files) =="
# Same runtime with a mid-run controller crash: the WAL and snapshots live
# in a scratch directory, the victim restarts from its fsync'd log, state-
# syncs the gap from a peer, and the run must still converge and audit
# clean.
cargo run -q --release --offline -p cicero-node -- examples/node_recovery.json

echo "verify.sh: all checks passed"
